//! Calendar queue: a time-bucketed event scheduler (Brown, CACM 1988) with an
//! overflow heap, tuned for the simulator's event-time distribution.
//!
//! # Structure
//!
//! Pending events live in one of three places, partitioned by firing time:
//!
//! * **window buckets** — a contiguous span of `n_buckets` fixed-width time
//!   buckets covering `[window_start, window_end)`. Each bucket is a small
//!   binary heap ordered by `(time, seq)`. Scheduling into the window and
//!   popping from it are O(log k) for k = events *in that bucket* — typically
//!   a handful — instead of O(log n) over the whole pending set.
//! * **overflow heap** — events at or beyond `window_end` (long timers: TCP
//!   RTOs, sampling ticks). When the window drains, it slides forward to the
//!   earliest overflow event and the overflow events inside the new span are
//!   redistributed into buckets — each event migrates at most once.
//! * **past heap** — events scheduled before the current cursor bucket. The
//!   simulation driver never does this (its `schedule_at` asserts
//!   time-monotonicity), so in practice this heap stays empty; it exists so
//!   the queue is a drop-in replacement for [`EventQueue`] under *arbitrary*
//!   interleavings, which is exactly what the equivalence proptests check.
//!
//! # Why pops are exactly `(time, seq)`-ordered
//!
//! The three regions partition time: `past < cursor-bucket start ≤ window
//! events < window_end ≤ overflow`. Buckets left of the cursor are always
//! empty (a late insert that would land there goes to the past heap instead),
//! buckets partition the window into disjoint intervals, and every individual
//! heap orders by `(time, seq)`. So "past heap, then first non-empty bucket,
//! then slide the window" always yields the global minimum — bit-for-bit the
//! order [`EventQueue`] produces, which keeps whole-simulation determinism.

use crate::handle::{CancelSet, TimerHandle};
use crate::queue::{QueueBackend, ScheduledEvent};
use crate::tiebreak::TieBreak;
use crate::time::SimTime;
use std::collections::BinaryHeap;

/// Default bucket width: 2^11 ns ≈ 2 µs, on the order of one MTU transmission
/// time at 10 Gb/s and well below the fabric RTT, so back-to-back packet
/// events spread across buckets instead of piling into one.
const DEFAULT_BUCKET_SHIFT: u32 = 11;

/// Default bucket count (power of two). Window span = 512 × 2 µs ≈ 1 ms,
/// which covers transmissions, propagation, RTTs, and delayed ACKs; only
/// RTO-scale timers overflow.
const DEFAULT_BUCKETS: usize = 512;

/// A deterministic event queue with O(1)-amortised scheduling on the
/// simulation hot path. Drop-in replacement for [`EventQueue`]: same API,
/// same pop order, plus the same [`TimerHandle`] cancellation.
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// Events earlier than the cursor bucket (see module docs; empty in
    /// monotone use).
    past: BinaryHeap<ScheduledEvent<E>>,
    /// The window: fixed-width time buckets, each a `(time, seq)` min-heap.
    buckets: Vec<BinaryHeap<ScheduledEvent<E>>>,
    /// Events at or beyond `window_end`.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// log2 of the bucket width in nanoseconds.
    bucket_shift: u32,
    /// Start of the window in nanoseconds (multiple of the bucket width).
    window_start: u64,
    /// First possibly-non-empty bucket; buckets left of it are empty.
    cursor: usize,
    /// Physical events enqueued anywhere (including cancelled-not-reaped).
    raw_len: usize,
    next_seq: u64,
    scheduled_total: u64,
    cancels: CancelSet,
    tie_break: TieBreak,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with the default geometry (512 buckets × ~2 µs).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_SHIFT, DEFAULT_BUCKETS)
    }

    /// An empty queue (default geometry) ordering same-instant events by
    /// `tie_break`. Must be set at construction: changing the policy after
    /// events are queued would leave mixed tie keys in the heaps.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        let mut q = Self::new();
        q.tie_break = tie_break;
        q
    }

    /// An empty queue with buckets of `1 << bucket_shift` nanoseconds and
    /// `n_buckets` of them per window. Exposed for tests and tuning;
    /// geometry affects performance only, never pop order.
    pub fn with_geometry(bucket_shift: u32, n_buckets: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        assert!(bucket_shift < 40, "bucket width must stay addressable");
        CalendarQueue {
            past: BinaryHeap::new(),
            buckets: (0..n_buckets).map(|_| BinaryHeap::new()).collect(),
            overflow: BinaryHeap::new(),
            bucket_shift,
            window_start: 0,
            cursor: 0,
            raw_len: 0,
            next_seq: 0,
            scheduled_total: 0,
            cancels: CancelSet::default(),
            tie_break: TieBreak::Fifo,
        }
    }

    /// Bucket index for time `t`, if `t` falls inside the current window.
    #[inline]
    fn bucket_index(&self, t: u64) -> Option<usize> {
        let idx = (t.checked_sub(self.window_start)? >> self.bucket_shift) as usize;
        (idx < self.buckets.len()).then_some(idx)
    }

    /// Nanosecond start of the cursor bucket.
    #[inline]
    fn cursor_start(&self) -> u64 {
        self.window_start + ((self.cursor as u64) << self.bucket_shift)
    }

    #[inline]
    fn push(&mut self, at: SimTime, lane: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_with_seq(at, seq, lane, event);
        seq
    }

    /// Insert with a caller-supplied sequence number: the
    /// [`HybridQueue`](crate::HybridQueue) owns one shared counter across its
    /// sub-queues so FIFO tie-breaks stay global.
    #[inline]
    pub(crate) fn insert_with_seq(&mut self, at: SimTime, seq: u64, lane: u64, event: E) {
        self.scheduled_total += 1;
        self.raw_len += 1;
        let t = at.as_nanos();
        let tie = self.tie_break.key(seq, lane);
        let se = ScheduledEvent {
            at,
            seq,
            tie,
            event,
        };
        if t < self.cursor_start() {
            // Behind the cursor: strictly earlier than everything still in
            // the window, so it must win the next pop.
            self.past.push(se);
        } else {
            match self.bucket_index(t) {
                Some(idx) => self.buckets[idx].push(se),
                None => self.overflow.push(se),
            }
        }
    }

    /// Advance the cursor (sliding the window as needed) until the earliest
    /// live event sits atop the past heap or the cursor bucket, and return
    /// its `(time, tie)` key without removing it. Reaps cancelled events it
    /// passes over. Cursor motion is order-neutral, so calling this without
    /// popping is always safe — the hybrid queue uses it to merge heads.
    pub(crate) fn prepare_head(&mut self) -> Option<(SimTime, u64)> {
        loop {
            // Past is strictly earlier than everything in the window.
            if let Some(se) = self.past.peek() {
                if !self.cancels.is_cancelled(se.seq) {
                    return Some((se.at, se.tie));
                }
                let se = self.past.pop().expect("peeked event exists");
                self.raw_len -= 1;
                self.cancels.reap(se.seq);
                continue;
            }
            while self.cursor < self.buckets.len() {
                match self.buckets[self.cursor].peek() {
                    Some(se) if !self.cancels.is_cancelled(se.seq) => {
                        return Some((se.at, se.tie));
                    }
                    Some(_) => {
                        let se = self.buckets[self.cursor]
                            .pop()
                            .expect("peeked event exists");
                        self.raw_len -= 1;
                        self.cancels.reap(se.seq);
                    }
                    None => self.cursor += 1,
                }
            }
            // Window exhausted: slide it to the earliest overflow event and
            // redistribute everything that now falls inside (same motion as
            // `pop_raw`).
            let earliest = self.overflow.peek()?.at.as_nanos();
            self.window_start = (earliest >> self.bucket_shift) << self.bucket_shift;
            self.cursor = 0;
            while let Some(se) = self.overflow.peek() {
                match self.bucket_index(se.at.as_nanos()) {
                    Some(idx) => {
                        let se = self.overflow.pop().expect("peeked event exists");
                        self.buckets[idx].push(se);
                    }
                    None => break,
                }
            }
        }
    }

    /// Pop the head that [`prepare_head`](Self::prepare_head) exposed.
    pub(crate) fn pop_prepared(&mut self) -> Option<ScheduledEvent<E>> {
        self.prepare_head()?;
        let se = match self.past.pop() {
            Some(se) => se,
            None => self.buckets[self.cursor]
                .pop()
                .expect("prepared head exists"),
        };
        self.raw_len -= 1;
        self.cancels.reap(se.seq);
        Some(se)
    }

    /// Pop the earliest physical event, cancelled or not.
    fn pop_raw(&mut self) -> Option<ScheduledEvent<E>> {
        if let Some(se) = self.past.pop() {
            self.raw_len -= 1;
            return Some(se);
        }
        loop {
            while self.cursor < self.buckets.len() {
                if let Some(se) = self.buckets[self.cursor].pop() {
                    self.raw_len -= 1;
                    return Some(se);
                }
                self.cursor += 1;
            }
            // Window exhausted: slide it to the earliest overflow event and
            // redistribute everything that now falls inside.
            let earliest = self.overflow.peek()?.at.as_nanos();
            self.window_start = (earliest >> self.bucket_shift) << self.bucket_shift;
            self.cursor = 0;
            while let Some(se) = self.overflow.peek() {
                match self.bucket_index(se.at.as_nanos()) {
                    Some(idx) => {
                        let se = self.overflow.pop().expect("peeked event exists");
                        self.buckets[idx].push(se);
                    }
                    None => break,
                }
            }
        }
    }

    /// Schedule `event` to fire at absolute time `at` (default lane 0).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.push(at, 0, event);
    }

    /// Schedule `event` at `at` in `lane` (the handling entity, used by
    /// [`TieBreak::Permuted`] same-instant ordering; ignored under FIFO).
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        self.push(at, lane, event);
    }

    /// Schedule `event` at `at`, returning a cancellation handle.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_in_lane(at, 0, event)
    }

    /// Cancellable scheduling with an explicit lane.
    pub fn schedule_cancellable_in_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        let seq = self.push(at, lane, event);
        self.cancels.register(seq)
    }

    /// Cancel a pending event (lazy deletion: it is skipped when popped).
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.cancels.cancel(handle)
    }

    /// Remove and return the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(se) = self.pop_raw() {
            if self.cancels.reap(se.seq) {
                continue;
            }
            // Pop-is-minimum invariant: nothing still queued may fire before
            // the event we just removed (debug builds only).
            debug_assert!(
                self.peek_time().is_none_or(|next| se.at <= next),
                "CalendarQueue popped an event later than the remaining head"
            );
            return Some((se.at, se.event));
        }
        None
    }

    /// The firing time of the earliest live pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let live_min = |heap: &BinaryHeap<ScheduledEvent<E>>| {
            let head = heap.peek()?;
            if !self.cancels.is_cancelled(head.seq) {
                return Some(head.at);
            }
            heap.iter()
                .filter(|se| !self.cancels.is_cancelled(se.seq))
                .map(|se| se.at)
                .min()
        };
        if let Some(t) = live_min(&self.past) {
            return Some(t);
        }
        for bucket in &self.buckets[self.cursor.min(self.buckets.len())..] {
            if let Some(t) = live_min(bucket) {
                return Some(t);
            }
        }
        live_min(&self.overflow)
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.raw_len - self.cancels.pending_cancelled()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    ///
    /// Monotone over the queue's lifetime: unaffected by pops, cancellations,
    /// and [`clear`](Self::clear).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (keeps `scheduled_total` and the seq counter).
    pub fn clear(&mut self) {
        self.past.clear();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.overflow.clear();
        self.window_start = 0;
        self.cursor = 0;
        self.raw_len = 0;
        self.cancels.clear();
    }

    /// Release excess capacity after a burst (e.g. between sweep points).
    pub fn shrink_to_fit(&mut self) {
        self.past.shrink_to_fit();
        for bucket in &mut self.buckets {
            bucket.shrink_to_fit();
        }
        self.overflow.shrink_to_fit();
    }
}

impl<E> QueueBackend<E> for CalendarQueue<E> {
    fn with_tie_break(tie_break: TieBreak) -> Self {
        CalendarQueue::with_tie_break(tie_break)
    }
    fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        CalendarQueue::schedule_in_lane(self, at, lane, event);
    }
    fn schedule_cancellable_in_lane(&mut self, at: SimTime, lane: u64, event: E) -> TimerHandle {
        CalendarQueue::schedule_cancellable_in_lane(self, at, lane, event)
    }
    fn cancel(&mut self, handle: TimerHandle) -> bool {
        CalendarQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        CalendarQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        CalendarQueue::scheduled_total(self)
    }
    fn clear(&mut self) {
        CalendarQueue::clear(self);
    }
    fn shrink_to_fit(&mut self) {
        CalendarQueue::shrink_to_fit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny geometry so unit tests cross window boundaries constantly.
    fn tiny() -> CalendarQueue<u64> {
        CalendarQueue::with_geometry(4, 8) // 16 ns buckets, 128 ns window
    }

    #[test]
    fn pops_in_time_order_across_windows() {
        let mut q = tiny();
        // Spread far beyond one window span.
        for (i, t) in [5_000u64, 3, 900, 17, 40_000, 41, 900, 128]
            .iter()
            .enumerate()
        {
            q.schedule(SimTime::from_nanos(*t), i as u64);
        }
        let mut times = Vec::new();
        while let Some((t, _)) = q.pop() {
            times.push(t.as_nanos());
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn same_instant_is_fifo_even_through_overflow() {
        let mut q = tiny();
        // All at one far-future instant: they sit in overflow, then get
        // redistributed together — order must still be insertion order.
        let t = SimTime::from_nanos(100_000);
        for i in 0..50u64 {
            q.schedule(t, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn late_insert_behind_cursor_still_wins() {
        let mut q = tiny();
        q.schedule(SimTime::from_nanos(100), 100);
        q.schedule(SimTime::from_nanos(10), 10);
        assert_eq!(q.pop().unwrap().0.as_nanos(), 10);
        // The cursor is now at the 100 ns bucket; schedule earlier than it.
        q.schedule(SimTime::from_nanos(20), 20);
        assert_eq!(q.pop().unwrap().0.as_nanos(), 20, "past-heap event wins");
        assert_eq!(q.pop().unwrap().0.as_nanos(), 100);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_matches_reference_semantics() {
        let mut q = tiny();
        let h_near = q.schedule_cancellable(SimTime::from_nanos(5), 5);
        let h_far = q.schedule_cancellable(SimTime::from_nanos(90_000), 90);
        q.schedule(SimTime::from_nanos(7), 7);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(h_far), "cancel works in overflow region");
        assert!(q.cancel(h_near), "cancel works in the window");
        assert!(!q.cancel(h_near), "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(7), 7)));
        assert!(q.pop().is_none(), "cancelled events are reaped silently");
        assert_eq!(q.scheduled_total(), 3);
    }

    #[test]
    fn peek_time_is_live_minimum() {
        let mut q = tiny();
        assert_eq!(q.peek_time(), None);
        let h = q.schedule_cancellable(SimTime::from_nanos(3), 3);
        q.schedule(SimTime::from_nanos(50_000), 50);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        q.cancel(h);
        assert_eq!(
            q.peek_time(),
            Some(SimTime::from_nanos(50_000)),
            "peek skips cancelled head and reaches overflow"
        );
    }

    #[test]
    fn clear_resets_events_but_not_counters() {
        let mut q = tiny();
        for i in 0..10u64 {
            q.schedule(SimTime::from_nanos(i * 1000), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
        q.schedule(SimTime::from_nanos(1), 1);
        assert_eq!(q.scheduled_total(), 11);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
    }
}

#[cfg(test)]
mod equivalence {
    //! The tentpole's correctness proof: for arbitrary interleavings of
    //! schedule / cancellable-schedule / pop / cancel, the calendar queue and
    //! the reference binary heap pop the same `(time, payload)` sequence and
    //! agree on every intermediate observation.

    use super::*;
    use crate::queue::EventQueue;
    use crate::tiebreak::pack_lane;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule at absolute time t (plain).
        Schedule(u64),
        /// Schedule at absolute time t (cancellable); remember the handle.
        ScheduleCancellable(u64),
        /// Pop one event.
        Pop,
        /// Cancel the k-th remembered handle (mod live list length).
        Cancel(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Times span several windows of the tiny geometry and collide
            // often (coarse granularity) to stress FIFO tie-breaks.
            4 => (0u64..60_000).prop_map(|t| Op::Schedule(t / 7 * 7)),
            3 => (0u64..60_000).prop_map(|t| Op::ScheduleCancellable(t / 7 * 7)),
            4 => Just(Op::Pop),
            2 => (0usize..64).prop_map(Op::Cancel),
        ]
    }

    fn check_equivalence(
        ops: Vec<Op>,
        shift: u32,
        n_buckets: usize,
        tb: TieBreak,
    ) -> Result<(), String> {
        let mut heap: EventQueue<u64> = EventQueue::with_tie_break(tb);
        let mut cal: CalendarQueue<u64> = CalendarQueue::with_geometry(shift, n_buckets);
        cal.tie_break = tb;
        let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    // Lane derived from the payload so permuted runs exercise
                    // cross-lane reordering with same-lane FIFO preserved.
                    heap.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    cal.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    payload += 1;
                }
                Op::ScheduleCancellable(t) => {
                    let hh = heap.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    let hc = cal.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    handles.push((hh, hc));
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), cal.pop(), "pop diverged");
                }
                Op::Cancel(k) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (hh, hc) = handles[k % handles.len()];
                    prop_assert_eq!(heap.cancel(hh), cal.cancel(hc), "cancel diverged");
                }
            }
            prop_assert_eq!(heap.len(), cal.len(), "live length diverged");
            prop_assert_eq!(heap.peek_time(), cal.peek_time(), "peek diverged");
            prop_assert_eq!(heap.scheduled_total(), cal.scheduled_total());
        }
        // Drain both completely: the full tail must match too.
        loop {
            let (a, b) = (heap.pop(), cal.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Equivalence under the tiny geometry (constant window slides).
        #[test]
        fn same_pops_tiny_geometry(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops, 4, 8, TieBreak::Fifo)?;
        }

        /// Equivalence under the production geometry.
        #[test]
        fn same_pops_default_geometry(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops, 11, 512, TieBreak::Fifo)?;
        }

        /// Equivalence with a single bucket (degenerates to heap-of-heaps).
        #[test]
        fn same_pops_single_bucket(ops in prop::collection::vec(arb_op(), 1..200)) {
            check_equivalence(ops, 6, 1, TieBreak::Fifo)?;
        }

        /// Equivalence holds under permuted tie-break too: the calendar's
        /// region argument orders by `(time, tie)` whatever the tie policy.
        #[test]
        fn same_pops_permuted(
            ops in prop::collection::vec(arb_op(), 1..300),
            seed in 0u64..1000,
        ) {
            check_equivalence(ops, 4, 8, TieBreak::Permuted(seed))?;
        }
    }
}
