//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the *small* slice of the `rand` 0.8 API it actually consumes: `SmallRng`
//! (implemented as xoshiro256++, the same family rand 0.8 uses on 64-bit
//! targets), `SeedableRng::seed_from_u64` (SplitMix64 expansion, as upstream),
//! and the `Rng` ergonomics `gen::<f64>()` / `gen_range(..)` over integer
//! ranges. Streams are deterministic and platform-independent, which is the
//! only property the simulator relies on.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from explicit seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream depends only on `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution (what `Rng::gen` draws).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1) — identical construction to
        // rand 0.8's `Standard` for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased uniform draw from `[0, n)` by rejection (Lemire-style widening).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone keeps the multiply-shift draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (n as u128);
        if (m as u64) <= zone || v <= zone {
            // Widening multiply-high is uniform once low bits pass the zone
            // test; the second disjunct keeps tiny `n` cheap.
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_ranges!(u64, u32, u16, u8, usize);

/// The ergonomic sampling surface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw a uniform value from an integer range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm rand 0.8's 64-bit `SmallRng` uses.
    /// Small state, excellent statistical quality, not cryptographic.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as upstream `seed_from_u64`.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
        for _ in 0..1000 {
            assert!(r.gen_range(0u64..7) < 7);
        }
    }
}
