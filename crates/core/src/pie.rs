//! PIE (Proportional Integral controller Enhanced, RFC 8033) with ECN and
//! the paper's protection modes.

use crate::config::PieConfig;
use crate::fifo::Fifo;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::{SimDuration, SimRng, SimTime};
use simtrace::{EventKind, TraceHandle, NO_QUEUE};

/// Past this many elapsed `T_UPDATE` periods the lazy timer stops replaying
/// them one by one and resets the controller outright: the queue has been
/// idle (or stalled) for so long that the old control state is meaningless.
const IDLE_RESET_STEPS: u64 = 64;

/// PIE: latency-based AQM driven by a departure-rate estimate.
///
/// Where RED reacts to queue *length* and CoDel to per-packet *sojourn*, PIE
/// steers an estimated queuing **delay** (`queue bytes / departure rate`)
/// towards a target with a PI controller, recomputing its early-action
/// probability every `T_UPDATE`:
///
/// ```text
/// p += alpha * (qdelay - target) + beta * (qdelay - qdelay_old)
/// ```
///
/// with RFC 8033's magnitude-dependent step scaling, idle decay and burst
/// allowance. The simulation has no wall-clock timers, so the periodic update
/// is applied **lazily**: elapsed periods are replayed on the next
/// enqueue/dequeue, which is observationally equivalent because the
/// controller's inputs only change when packets move.
///
/// ECN semantics follow RFC 8033 §5.1: while the probability is at or below
/// `mark_ecnth`, selected ECT packets are CE-marked; above it even ECT
/// traffic is dropped (the controller no longer trusts marking alone).
/// Selected non-ECT packets are dropped — unless exempted by the configured
/// [`crate::ProtectionMode`], the paper's modification.
#[derive(Debug)]
pub struct Pie {
    cfg: PieConfig,
    fifo: Fifo,
    stats: QueueStats,
    conserve: ConservationCheck,
    rng: SimRng,
    /// Early-action probability, updated every `T_UPDATE`.
    prob: f64,
    /// Previous update's delay estimate, in seconds (RFC `qdelay_old_`).
    qdelay_old: f64,
    /// Remaining burst allowance (no early action while positive).
    burst_allowance: SimDuration,
    last_update: SimTime,
    /// Departure-rate measurement cycle start (RFC `dq_tstamp_`).
    dq_start: Option<SimTime>,
    /// Bytes departed in the current measurement cycle (RFC `dq_count_`).
    dq_bytes: u64,
    /// Smoothed departure rate in bytes/second (RFC `avg_dq_rate_`).
    avg_dq_rate: Option<f64>,
    trace: TraceHandle,
    trace_q: u32,
}

impl Pie {
    /// Build the queue. `seed` feeds the probabilistic early decision.
    pub fn new(cfg: PieConfig, seed: u64) -> Self {
        cfg.validate();
        let burst = cfg.max_burst;
        Pie {
            cfg,
            fifo: Fifo::new(),
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            rng: SimRng::new(seed),
            prob: 0.0,
            qdelay_old: 0.0,
            burst_allowance: burst,
            last_update: SimTime::ZERO,
            dq_start: None,
            dq_bytes: 0,
            avg_dq_rate: None,
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// The configuration this queue was built with.
    pub fn config(&self) -> &PieConfig {
        &self.cfg
    }

    /// Current early-action probability.
    pub fn drop_probability(&self) -> f64 {
        self.prob
    }

    /// Current queuing-delay estimate in seconds (0 until the departure rate
    /// has been measured).
    pub fn queue_delay_estimate(&self) -> f64 {
        match self.avg_dq_rate {
            Some(rate) if rate > 0.0 => self.fifo.bytes() as f64 / rate,
            _ => 0.0,
        }
    }

    /// Replay elapsed `T_UPDATE` periods (lazy periodic timer).
    fn advance(&mut self, now: SimTime) {
        let steps = now.since(self.last_update).as_nanos() / self.cfg.t_update.as_nanos().max(1);
        if steps == 0 {
            return;
        }
        if steps > IDLE_RESET_STEPS {
            self.prob = 0.0;
            self.qdelay_old = 0.0;
            self.burst_allowance = self.cfg.max_burst;
            self.dq_start = None;
            self.dq_bytes = 0;
            self.last_update = now;
            return;
        }
        for _ in 0..steps {
            self.update_step();
            self.last_update += self.cfg.t_update;
        }
    }

    /// One RFC 8033 §4.2 probability update.
    fn update_step(&mut self) {
        let qdelay = self.queue_delay_estimate();
        let target = self.cfg.target.as_secs_f64();
        let mut delta =
            self.cfg.alpha * (qdelay - target) + self.cfg.beta * (qdelay - self.qdelay_old);
        // RFC 8033 auto-scaling: tiny probabilities move in tiny steps so the
        // controller can resolve sub-percent operating points.
        delta *= if self.prob < 0.000001 {
            1.0 / 2048.0
        } else if self.prob < 0.00001 {
            1.0 / 512.0
        } else if self.prob < 0.0001 {
            1.0 / 128.0
        } else if self.prob < 0.001 {
            1.0 / 32.0
        } else if self.prob < 0.01 {
            1.0 / 8.0
        } else if self.prob < 0.1 {
            1.0 / 2.0
        } else {
            1.0
        };
        self.prob = (self.prob + delta).clamp(0.0, 1.0);
        // Idle decay: with the queue empty two updates in a row, bleed the
        // probability off exponentially.
        if qdelay == 0.0 && self.qdelay_old == 0.0 {
            self.prob *= 0.98;
        }
        if self.burst_allowance > SimDuration::ZERO {
            self.burst_allowance -= self.cfg.t_update;
        } else if self.prob == 0.0 && qdelay < target / 2.0 && self.qdelay_old < target / 2.0 {
            // Congestion is over: re-arm the burst allowance.
            self.burst_allowance = self.cfg.max_burst;
        }
        self.qdelay_old = qdelay;
    }

    /// RFC 8033 §4.1: should this arrival be early-acted-upon?
    fn should_signal(&mut self) -> bool {
        if self.burst_allowance > SimDuration::ZERO {
            return false;
        }
        // Safeguards: no early action while delay is comfortably under
        // target and the probability modest, nor on a near-empty queue.
        if (self.qdelay_old < self.cfg.target.as_secs_f64() / 2.0 && self.prob < 0.2)
            || self.fifo.len() <= 2
        {
            return false;
        }
        self.rng.chance(self.prob)
    }

    fn accept(&mut self, mut packet: Packet, mark: bool, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if mark {
            packet.ecn = packet.ecn.marked();
        }
        if self.trace.is_enabled() {
            if mark {
                self.trace
                    .emit(packet_event(EventKind::Marked, now, self.trace_q, &packet));
            }
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.fifo.push(packet);
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, mark, self.fifo.len(), self.fifo.bytes());
        self.debug_verify_conservation();
        if mark {
            EnqueueOutcome::EnqueuedMarked
        } else {
            EnqueueOutcome::Enqueued
        }
    }
}

impl QueueDiscipline for Pie {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        self.advance(now);
        let kind = PacketKind::of(&packet);
        if self.fifo.len() >= self.cfg.capacity_packets {
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        if !self.should_signal() {
            return self.accept(packet, false, now);
        }
        if self.cfg.ecn && packet.is_ect() && self.prob <= self.cfg.mark_ecnth {
            return self.accept(packet, true, now);
        }
        if self.cfg.ecn && self.cfg.protection.protects(&packet) {
            // The paper's modification: protected non-ECT packets are admitted
            // unmarked instead of early-dropped.
            return self.accept(packet, false, now);
        }
        self.stats.dropped_early.bump(kind);
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::DroppedEarly,
                now,
                self.trace_q,
                &packet,
            ));
        }
        EnqueueOutcome::DroppedEarly
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.advance(now);
        // Departure-rate measurement (RFC 8033 §4.3): cycles only run while
        // the backlog is deep enough to time meaningfully.
        if self.dq_start.is_none() && self.fifo.bytes() >= self.cfg.dq_threshold_bytes {
            self.dq_start = Some(now);
            self.dq_bytes = 0;
        }
        let p = self.fifo.pop()?;
        if let Some(start) = self.dq_start {
            self.dq_bytes += p.wire_bytes() as u64;
            if self.dq_bytes >= self.cfg.dq_threshold_bytes {
                let dt = now.since(start);
                if dt > SimDuration::ZERO {
                    let sample = self.dq_bytes as f64 / dt.as_secs_f64();
                    self.avg_dq_rate = Some(match self.avg_dq_rate {
                        // RFC weight of 1/2 on fresh samples.
                        Some(rate) => 0.5 * rate + 0.5 * sample,
                        None => sample,
                    });
                    self.dq_start = if self.fifo.bytes() >= self.cfg.dq_threshold_bytes {
                        Some(now)
                    } else {
                        None
                    };
                    self.dq_bytes = 0;
                }
                // dt == 0: keep the cycle open until time actually passes.
            }
        }
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn len_packets(&self) -> u64 {
        self.fifo.len()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn capacity_packets(&self) -> u64 {
        self.cfg.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for p in self.fifo.iter() {
            kinds[PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!(
            "PIE[{}](target={},cap={},ecn={})",
            self.cfg.protection.label(),
            self.cfg.target,
            self.cfg.capacity_packets,
            self.cfg.ecn
        )
    }

    fn debug_verify_conservation(&self) {
        self.conserve
            .verify("PIE", &self.stats, self.fifo.len(), self.fifo.bytes());
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtectionMode;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn data(id: u64, ecn: EcnCodepoint) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    fn ack(id: u64) -> Packet {
        Packet {
            payload: 0,
            ecn: EcnCodepoint::NotEct,
            ..data(id, EcnCodepoint::NotEct)
        }
    }

    fn cfg(protection: ProtectionMode) -> PieConfig {
        PieConfig {
            capacity_packets: 10_000,
            target: SimDuration::from_micros(500),
            t_update: SimDuration::from_micros(500),
            alpha: 0.125,
            beta: 1.25,
            max_burst: SimDuration::from_millis(5),
            mark_ecnth: 0.1,
            dq_threshold_bytes: 16 * 1024,
            ecn: true,
            protection,
        }
    }

    /// Overload drive: arrivals every `arrive_us`, one departure every
    /// `serve_us`, for `total_us` of simulated time. Every 5th arrival is a
    /// non-ECT ACK. Returns the queue.
    fn overload(protection: ProtectionMode, arrive_us: u64, serve_us: u64, total_us: u64) -> Pie {
        let mut q = Pie::new(cfg(protection), 42);
        let mut next_arrival = 0u64;
        let mut next_service = serve_us;
        let mut id = 0u64;
        for t in 0..total_us {
            if t >= next_arrival {
                let p = if id % 5 == 0 {
                    ack(id)
                } else {
                    data(id, EcnCodepoint::Ect0)
                };
                let _ = q.enqueue(p, SimTime::from_micros(t));
                id += 1;
                next_arrival = t + arrive_us;
            }
            if t >= next_service {
                q.dequeue(SimTime::from_micros(t));
                next_service = t + serve_us;
            }
        }
        q
    }

    #[test]
    fn burst_allowance_admits_initial_burst() {
        let mut q = Pie::new(cfg(ProtectionMode::Default), 1);
        // 2000 instantaneous arrivals: all inside the burst allowance.
        for i in 0..2000 {
            let out = q.enqueue(data(i, EcnCodepoint::Ect0), SimTime::from_nanos(i));
            assert_eq!(out, EnqueueOutcome::Enqueued);
        }
        assert_eq!(q.stats().marked.total(), 0);
        assert_eq!(q.stats().dropped_early.total(), 0);
    }

    #[test]
    fn sustained_overload_marks_ect_and_drops_acks() {
        // 3x overload for 100 ms: the delay estimate blows past the 500 us
        // target, the controller ramps, ECT data gets marked and (in Default
        // mode) non-ECT ACKs die — the paper's pathology on a delay-based AQM.
        let q = overload(ProtectionMode::Default, 10, 30, 100_000);
        assert!(
            q.drop_probability() > 0.0,
            "controller must have engaged: p = {}",
            q.drop_probability()
        );
        assert!(q.stats().marked.total() > 0, "ECT data must be marked");
        assert!(
            q.stats().dropped_early.get(PacketKind::PureAck) > 0,
            "PIE drops ACKs too"
        );
    }

    #[test]
    fn ack_syn_protection_saves_every_ack() {
        let q = overload(ProtectionMode::AckSyn, 10, 30, 100_000);
        assert!(q.stats().marked.total() > 0);
        assert_eq!(
            q.stats().dropped_early.get(PacketKind::PureAck),
            0,
            "protection must exempt pure ACKs from early drop"
        );
    }

    #[test]
    fn high_probability_drops_even_ect() {
        // Harsh 10x overload long enough for p to exceed MARK_ECNTH: RFC 8033
        // stops trusting marking and drops ECT data as well.
        let q = overload(ProtectionMode::Default, 5, 50, 400_000);
        assert!(
            q.drop_probability() > 0.1,
            "p must exceed mark_ecnth, got {}",
            q.drop_probability()
        );
        assert!(
            q.stats().dropped_early.get(PacketKind::Data) > 0,
            "above mark_ecnth even ECT data is dropped"
        );
    }

    #[test]
    fn uncongested_queue_never_signals() {
        let mut q = Pie::new(cfg(ProtectionMode::Default), 1);
        // Arrivals served immediately: delay estimate stays 0.
        for i in 0..5000 {
            let t = SimTime::from_micros(i * 20);
            let _ = q.enqueue(data(i, EcnCodepoint::Ect0), t);
            q.dequeue(t + SimDuration::from_micros(10));
        }
        assert_eq!(q.stats().marked.total(), 0);
        assert_eq!(q.stats().dropped_early.total(), 0);
        assert_eq!(q.drop_probability(), 0.0);
    }

    #[test]
    fn long_idle_resets_the_controller() {
        let mut q = overload(ProtectionMode::Default, 10, 30, 100_000);
        let engaged = q.drop_probability();
        assert!(engaged > 0.0);
        // Drain, then come back after far more than IDLE_RESET_STEPS periods.
        while q.dequeue(SimTime::from_micros(100_000)).is_some() {}
        let resume = SimTime::from_micros(100_000 + 500 * 1000);
        assert_eq!(
            q.enqueue(data(999_999, EcnCodepoint::Ect0), resume),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            q.drop_probability(),
            0.0,
            "controller state must reset across a long idle gap"
        );
    }

    #[test]
    fn tail_drop_on_full_buffer() {
        let mut c = cfg(ProtectionMode::AckSyn);
        c.capacity_packets = 4;
        let mut q = Pie::new(c, 1);
        for i in 0..4 {
            assert!(q
                .enqueue(data(i, EcnCodepoint::Ect0), SimTime::ZERO)
                .accepted());
        }
        assert_eq!(
            q.enqueue(ack(9), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let run = |seed: u64| -> (Vec<EnqueueOutcome>, u64) {
            let mut q = Pie::new(cfg(ProtectionMode::Default), seed);
            let mut outs = Vec::new();
            for i in 0..3000 {
                let p = if i % 5 == 0 {
                    ack(i)
                } else {
                    data(i, EcnCodepoint::Ect0)
                };
                outs.push(q.enqueue(p, SimTime::from_micros(i * 10)));
                if i % 3 == 0 {
                    q.dequeue(SimTime::from_micros(i * 10 + 5));
                }
            }
            (outs, q.stats().marked.total())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn conservation_property() {
        let mut q = overload(ProtectionMode::Default, 10, 30, 50_000);
        while q.dequeue(SimTime::from_micros(50_000)).is_some() {}
        let s = q.stats();
        assert_eq!(s.enqueued.total(), s.dequeued.total());
        assert_eq!(s.bytes_enqueued, s.bytes_dequeued);
        assert!(q.is_empty());
    }
}
