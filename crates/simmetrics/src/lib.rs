#![warn(missing_docs)]

//! Measurement infrastructure for the ECN/Hadoop reproduction.
//!
//! Three instruments cover everything the paper reports:
//!
//! * [`LatencyHistogram`] — streaming log-bucketed histogram of per-packet
//!   end-to-end latencies (paper Fig. 4's metric);
//! * [`ThroughputMeter`] — bytes-delivered accounting per node and cluster-wide
//!   (paper Fig. 3's metric);
//! * [`QueueTrace`] — time series of a queue's occupancy with per-packet-kind
//!   composition (the paper's Fig. 1 "snapshot of a network switch queue");
//! * [`FctCollector`] — per-flow completion times and slowdowns, split into
//!   mice vs elephants (the metric of the `workload` crate's generators).

mod fct;
mod histogram;
mod queue_trace;
mod throughput;

pub use fct::{ClassFctSummary, FctCollector, FctSummary, FlowClass, IdealFct};
pub use histogram::LatencyHistogram;
pub use queue_trace::{QueueSample, QueueTrace};
pub use throughput::ThroughputMeter;
