//! The controller × queue-discipline matrix: every `simcc` congestion
//! controller against the paper's protection-relevant queue disciplines, on
//! shallow buffers, at one deterministic point.
//!
//! This is the controller-dimension companion to the main sweep: the paper's
//! story (ACK early-drops starve the shuffle; protection or a true marking
//! scheme fixes it) was told through Reno and DCTCP, and the matrix checks
//! which parts survive a modern stack — CUBIC, BBR, and TCP Prague with its
//! classic-ECN-AQM fallback detector (see [`check_cc_claims`]).

use crate::scenario::{
    run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};
use simevent::SimDuration;
use tcpstack::CcAlg;

/// The queue disciplines each controller runs against. DropTail is the
/// normalisation baseline; RED default/ack+syn is the pathology and its fix;
/// the RED mimic (min=max=K, still EWMA-averaged and still early-dropping
/// non-ECT) is the classic-ECN AQM a Prague sender must detect; simple
/// marking is the paper's proposal and must *not* trip the detector. The
/// modern-AQM columns (Curvy RED, PIE, DualQ) extend the question: DualQ is
/// the queue Prague was built for, so its cell is the headline — the
/// fallback detector must stay silent there while still firing on the mimic.
pub const CC_MATRIX_QUEUES: [QueueKind; 8] = [
    QueueKind::DropTail,
    QueueKind::Red(ProtectionMode::Default),
    QueueKind::Red(ProtectionMode::AckSyn),
    QueueKind::RedMimic(ProtectionMode::AckSyn),
    QueueKind::SimpleMarking,
    QueueKind::CurvyRed(ProtectionMode::AckSyn),
    QueueKind::Pie(ProtectionMode::AckSyn),
    QueueKind::DualQ(ProtectionMode::AckSyn),
];

/// The matrix's single target delay. 500 µs sits in the middle of the
/// sweep's band: tight enough that stock RED early-drops ACKs, loose enough
/// that the protected configurations keep full throughput.
pub fn cc_matrix_delay() -> SimDuration {
    SimDuration::from_micros(500)
}

/// One cell of the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcPoint {
    /// The congestion controller under test.
    pub cc: CcAlg,
    /// The switch discipline it ran against.
    pub queue: QueueKind,
    /// Averaged metrics for the cell.
    pub metrics: RunMetrics,
}

/// The full matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcMatrixResults {
    /// Every controller × queue cell, controllers outermost, queues in
    /// [`CC_MATRIX_QUEUES`] order.
    pub points: Vec<CcPoint>,
}

impl CcMatrixResults {
    /// Look up one cell.
    pub fn cell(&self, cc: CcAlg, queue: QueueKind) -> Option<&RunMetrics> {
        self.points
            .iter()
            .find(|p| p.cc == cc && p.queue == queue)
            .map(|p| &p.metrics)
    }
}

/// Run the matrix: every controller × every protection-relevant queue, on
/// shallow buffers. The transport hint is classic ECN, so loss-based
/// controllers (Reno, CUBIC, BBR) negotiate RFC 3168 ECN while the
/// CE-fraction controllers (DCTCP, Prague) run their required DCTCP-style
/// feedback — exactly what `--cc` does on the other bins.
///
/// The matrix deliberately pins its own scenario (the tiny shallow-buffer
/// incast point) and takes only the seed from `cfg`: it is a claims gate,
/// not a sweep, so the same deterministic point runs everywhere the gate
/// runs. In particular, Prague's staleness test compares a marked packet's
/// RTT against the connection's clean-sample floor, which is sound while
/// congestion is forward-path; at full all-to-all scale the *reverse* path
/// (the ACK stream) queues too, inflating the clean floor and confounding
/// any RTT-only staleness inference (see DESIGN.md §13). Full-scale
/// controller behaviour stays explorable via `--cc` on the other bins; it
/// is not a gated claim.
pub fn run_cc_matrix(cfg: &ScenarioConfig) -> CcMatrixResults {
    let mut points = Vec::with_capacity(CcAlg::ALL.len() * CC_MATRIX_QUEUES.len());
    for &cc in &CcAlg::ALL {
        let mut c = ScenarioConfig::tiny();
        c.seed = cfg.seed;
        c.cc = Some(cc);
        // The matrix gates direction-of-effect ratios on single cells, so
        // average several repetitions per cell — one RTO-tail event at toy
        // scale can otherwise swamp a cell.
        c.seed_count = 3;
        for &queue in &CC_MATRIX_QUEUES {
            let metrics = run_scenario(
                &c,
                Transport::TcpEcn,
                queue,
                BufferDepth::Shallow,
                cc_matrix_delay(),
            );
            points.push(CcPoint { cc, queue, metrics });
        }
    }
    CcMatrixResults { points }
}

/// Controller-dimension headline numbers, distilled from the matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcClaimsReport {
    /// CUBIC goodput under RED\[ack+syn\] relative to CUBIC under stock
    /// RED\[default\] — the protection rescue, same controller, same AQM
    /// family (expected well above 1: stock RED early-drops the ACK clock).
    pub cubic_protection_rescue: f64,
    /// CUBIC goodput under RED\[ack+syn\], normalised to CUBIC on DropTail —
    /// protection must rescue the incast goodput (expected ≥ 1).
    pub cubic_ack_syn_vs_droptail: f64,
    /// BBR goodput under RED\[ack+syn\] vs BBR on DropTail — the fix must
    /// generalise to a rate-based controller too.
    pub bbr_ack_syn_vs_droptail: f64,
    /// Classic-ECN-AQM fallback episodes Prague detected against the RED
    /// mimic (a classic AQM wearing a step-marking costume; expected > 0).
    pub prague_fallbacks_red_mimic: u64,
    /// Fallback episodes against the true simple marking scheme (a genuine
    /// step AQM; the detector must stay silent, expected 0).
    pub prague_fallbacks_simple_marking: u64,
    /// Fallback episodes against the L4S DualQ coupled AQM — the queue
    /// Prague was designed for, and the matrix's headline cell. The L queue
    /// step-marks ECT(1) traffic at sub-RTT sojourns, so the detector must
    /// stay silent (expected 0) while still firing on the RED mimic.
    pub prague_fallbacks_dualq: u64,
}

fn norm(results: &CcMatrixResults, cc: CcAlg, queue: QueueKind) -> f64 {
    let num = results.cell(cc, queue);
    let den = results.cell(cc, QueueKind::DropTail);
    match (num, den) {
        (Some(n), Some(d)) if d.throughput_per_node_bps > 0.0 => {
            n.throughput_per_node_bps / d.throughput_per_node_bps
        }
        _ => f64::NAN,
    }
}

/// Distill the matrix into the gated controller-dimension claims.
pub fn cc_claims(results: &CcMatrixResults) -> CcClaimsReport {
    let fallbacks = |queue| {
        results
            .cell(CcAlg::Prague, queue)
            .map_or(u64::MAX, |m| m.cc_fallbacks)
    };
    let rescue = {
        let protected = results.cell(CcAlg::Cubic, QueueKind::Red(ProtectionMode::AckSyn));
        let stock = results.cell(CcAlg::Cubic, QueueKind::Red(ProtectionMode::Default));
        match (protected, stock) {
            (Some(p), Some(s)) if s.throughput_per_node_bps > 0.0 => {
                p.throughput_per_node_bps / s.throughput_per_node_bps
            }
            _ => f64::NAN,
        }
    };
    CcClaimsReport {
        cubic_protection_rescue: rescue,
        cubic_ack_syn_vs_droptail: norm(
            results,
            CcAlg::Cubic,
            QueueKind::Red(ProtectionMode::AckSyn),
        ),
        bbr_ack_syn_vs_droptail: norm(results, CcAlg::Bbr, QueueKind::Red(ProtectionMode::AckSyn)),
        prague_fallbacks_red_mimic: fallbacks(QueueKind::RedMimic(ProtectionMode::AckSyn)),
        prague_fallbacks_simple_marking: fallbacks(QueueKind::SimpleMarking),
        prague_fallbacks_dualq: fallbacks(QueueKind::DualQ(ProtectionMode::AckSyn)),
    }
}

/// Direction-of-effect gates on the controller dimension, same philosophy as
/// [`crate::claims::check_claims`]: deliberately loose thresholds on the
/// pinned matrix point that catch a regression that erases the pathology,
/// breaks the fix, or mistunes the Prague detector. Returns one description
/// per failed gate; empty means the controller claims reproduced.
pub fn check_cc_claims(c: &CcClaimsReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut gate = |desc: &str, value: f64, pass: bool| {
        if !value.is_finite() || !pass {
            failures.push(format!("{desc} (measured {value:.3})"));
        }
    };
    gate(
        "ack+syn protection must rescue CUBIC goodput vs stock RED: expected > 1.2x",
        c.cubic_protection_rescue,
        c.cubic_protection_rescue > 1.2,
    );
    gate(
        "ack+syn protection must hold CUBIC goodput: expected > 0.9 of droptail",
        c.cubic_ack_syn_vs_droptail,
        c.cubic_ack_syn_vs_droptail > 0.9,
    );
    gate(
        "ack+syn protection must hold BBR goodput: expected > 0.8 of droptail",
        c.bbr_ack_syn_vs_droptail,
        c.bbr_ack_syn_vs_droptail > 0.8,
    );
    gate(
        "Prague must detect the classic AQM behind the RED mimic: expected > 0 episodes",
        c.prague_fallbacks_red_mimic as f64,
        c.prague_fallbacks_red_mimic >= 1 && c.prague_fallbacks_red_mimic != u64::MAX,
    );
    gate(
        "Prague must stay scalable on true simple marking: expected 0 episodes",
        c.prague_fallbacks_simple_marking as f64,
        c.prague_fallbacks_simple_marking == 0,
    );
    gate(
        "Prague must stay scalable on its native L4S DualQ: expected 0 episodes",
        c.prague_fallbacks_dualq as f64,
        c.prague_fallbacks_dualq == 0,
    );
    failures
}

/// Render the matrix and the claims, throughput normalised per controller to
/// its own DropTail cell.
pub fn render_cc_matrix(results: &CcMatrixResults) -> String {
    let mut s = String::new();
    s.push_str("== Controller × queue matrix (shallow, 500 µs target) ==\n");
    s.push_str(&format!(
        "{:<8} {:<18} {:>10} {:>11} {:>9} {:>10} {:>9}\n",
        "cc", "queue", "tput/base", "latency-us", "ack-drop", "timeouts", "fallback"
    ));
    for p in &results.points {
        let base = norm(results, p.cc, p.queue);
        s.push_str(&format!(
            "{:<8} {:<18} {:>10.3} {:>11.1} {:>9} {:>10} {:>9}\n",
            p.cc.label(),
            p.queue.label(),
            base,
            p.metrics.mean_latency_s * 1e6,
            p.metrics.acks_early_dropped,
            p.metrics.timeouts,
            p.metrics.cc_fallbacks,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(tput: f64, fallbacks: u64) -> RunMetrics {
        RunMetrics {
            runtime_s: 1.0,
            throughput_per_node_bps: tput,
            mean_latency_s: 1.0,
            p99_latency_s: 2.0,
            acks_early_dropped: 0,
            handshake_early_dropped: 0,
            data_marked: 0,
            full_drops: 0,
            timeouts: 0,
            fast_retransmits: 0,
            syn_retransmits: 0,
            cc_fallbacks: fallbacks,
            completed: true,
        }
    }

    fn healthy_matrix() -> CcMatrixResults {
        let mut points = Vec::new();
        for &cc in &CcAlg::ALL {
            for &queue in &CC_MATRIX_QUEUES {
                let tput = match queue {
                    QueueKind::Red(ProtectionMode::Default) => 70.0,
                    _ => 100.0,
                };
                let fb = match (cc, queue) {
                    (CcAlg::Prague, QueueKind::RedMimic(_)) => 2,
                    (CcAlg::Prague, QueueKind::Red(_)) => 1,
                    _ => 0,
                };
                points.push(CcPoint {
                    cc,
                    queue,
                    metrics: metrics(tput, fb),
                });
            }
        }
        CcMatrixResults { points }
    }

    #[test]
    fn healthy_matrix_passes_every_gate() {
        let c = cc_claims(&healthy_matrix());
        assert!((c.cubic_protection_rescue - 100.0 / 70.0).abs() < 1e-9);
        assert!((c.cubic_ack_syn_vs_droptail - 1.0).abs() < 1e-9);
        assert_eq!(c.prague_fallbacks_red_mimic, 2);
        assert_eq!(c.prague_fallbacks_simple_marking, 0);
        assert_eq!(c.prague_fallbacks_dualq, 0);
        assert!(check_cc_claims(&c).is_empty());
    }

    #[test]
    fn erased_pathology_fails_the_cubic_gate() {
        let mut m = healthy_matrix();
        for p in &mut m.points {
            p.metrics.throughput_per_node_bps = 100.0;
        }
        let failures = check_cc_claims(&cc_claims(&m));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("CUBIC"), "{failures:?}");
    }

    #[test]
    fn silent_detector_fails_the_prague_gate() {
        let mut m = healthy_matrix();
        for p in &mut m.points {
            p.metrics.cc_fallbacks = 0;
        }
        let failures = check_cc_claims(&cc_claims(&m));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("RED mimic"), "{failures:?}");
    }

    #[test]
    fn trigger_happy_detector_fails_the_marking_and_dualq_gates() {
        let mut m = healthy_matrix();
        for p in &mut m.points {
            if p.cc == CcAlg::Prague {
                p.metrics.cc_fallbacks = 3;
            }
        }
        let failures = check_cc_claims(&cc_claims(&m));
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("simple marking")));
        assert!(failures.iter().any(|f| f.contains("DualQ")));
    }

    #[test]
    fn fallback_on_dualq_fails_the_headline_gate() {
        let mut m = healthy_matrix();
        for p in &mut m.points {
            if p.cc == CcAlg::Prague && matches!(p.queue, QueueKind::DualQ(_)) {
                p.metrics.cc_fallbacks = 1;
            }
        }
        let failures = check_cc_claims(&cc_claims(&m));
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("DualQ"), "{failures:?}");
    }

    #[test]
    fn missing_cell_always_fails() {
        let mut m = healthy_matrix();
        m.points.retain(|p| p.cc != CcAlg::Prague);
        let failures = check_cc_claims(&cc_claims(&m));
        assert_eq!(failures.len(), 3, "{failures:?}");
    }

    #[test]
    fn render_includes_every_controller() {
        let s = render_cc_matrix(&healthy_matrix());
        for cc in CcAlg::ALL {
            assert!(s.contains(cc.label()), "{s}");
        }
        assert!(s.contains("red-mimic[ack+syn]"));
    }
}
