//! Traffic-generator benches: one nano-scale run of each `workload`
//! generator (incast, permutation + mice, closed-loop RPC) over DCTCP and a
//! protected RED-mimic — the configuration the workloads experiment treats
//! as the fixed baseline. Exercises the full generator → `WorkloadApp` →
//! `netsim` path, so a regression in any layer shows up here.

use criterion::{criterion_group, criterion_main, Criterion};
use ecn_core::{ProtectionMode, QdiscSpec, RedConfig};
use netpacket::NodeId;
use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
use simevent::{SimDuration, SimTime};
use simmetrics::IdealFct;
use tcpstack::{EcnMode, TcpConfig};
use workload::{
    Incast, IncastConfig, Mixed, MixedConfig, Rpc, RpcConfig, SizeDist, TrafficModel, WorkloadApp,
};

const HOSTS: u32 = 6;
const RATE_BPS: u64 = 1_000_000_000;

fn network() -> Network {
    let qdisc = QdiscSpec::Red(RedConfig::dctcp_mimic(
        SimDuration::from_micros(500),
        RATE_BPS,
        1526,
        100,
        ProtectionMode::AckSyn,
    ));
    Network::new(ClusterSpec::single_rack(
        HOSTS,
        LinkSpec::gbps(1, 5),
        qdisc,
        7,
    ))
}

/// Run a generator to completion; returns bytes moved so criterion can't
/// dead-code the simulation away.
fn run<M: TrafficModel>(model: M) -> u64 {
    let ideal = IdealFct {
        base_rtt: SimDuration::from_micros(20),
        bottleneck_bps: RATE_BPS,
    };
    let app = WorkloadApp::new(model, TcpConfig::with_ecn(EcnMode::Dctcp), ideal);
    let mut sim = Simulation::new(network(), app);
    sim.time_limit = SimTime::from_secs(30);
    sim.run();
    assert!(sim.app.model.done(), "workload must finish in-bench");
    sim.app.fct_summary().all.bytes
}

fn incast() -> Incast {
    Incast::new(IncastConfig {
        aggregator: NodeId(0),
        fanin: HOSTS - 1,
        response_bytes: 200_000,
        rounds: 2,
        stagger: SimDuration::from_micros(100),
        round_gap: SimDuration::from_micros(500),
        seed: 7,
    })
}

fn mixed() -> Mixed {
    Mixed::new(MixedConfig {
        elephant_lanes: HOSTS,
        elephant_bytes: 500_000,
        elephants_per_lane: 1,
        mice: 10,
        mice_mean_gap: SimDuration::from_micros(300),
        mice_sizes: SizeDist::WebSearch,
        seed: 7,
    })
}

fn rpc() -> Rpc {
    Rpc::new(RpcConfig {
        clients: 2,
        fanout: 3,
        request_bytes: 2_000,
        response_bytes: 64_000,
        requests_per_client: 3,
        think_time: SimDuration::from_micros(200),
        service_jitter: SimDuration::from_micros(100),
        slo: SimDuration::from_millis(5),
        seed: 7,
    })
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads_nano");
    g.sample_size(10);
    g.bench_function("incast", |b| b.iter(|| run(incast())));
    g.bench_function("mixed", |b| b.iter(|| run(mixed())));
    g.bench_function("rpc", |b| b.iter(|| run(rpc())));
    g.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
