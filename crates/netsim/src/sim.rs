//! The event loop and the application hook.

use crate::network::{dev_lane, DevRef, Event, Network, APP_LANE, SAMPLE_LANE};
use netpacket::{FlowId, NodeId};
use simevent::{
    HeapScheduler, QueueBackend, RunOutcome, Scheduler, SchedulerConfig, SimTime, TieBreak,
    TimerHandle,
};
use tcpstack::TcpConfig;

/// A workload driving the network: starts flows, reacts to completions, and
/// decides when the simulation is over. `mrsim`'s Terasort job implements
/// this; tests use [`StaticFlows`].
pub trait Application {
    /// Called once at t=0 before any event is processed.
    fn on_start(&mut self, net: &mut Network, now: SimTime);
    /// Called when a flow's final byte is acknowledged.
    fn on_flow_complete(&mut self, flow: FlowId, net: &mut Network, now: SimTime);
    /// Called for every [`Event::AppTimer`] the application scheduled via
    /// [`Network::schedule_app_timer`].
    fn on_timer(&mut self, token: u64, net: &mut Network, now: SimTime);
    /// Checked after every event; returning `true` ends the run.
    fn done(&self, net: &Network) -> bool;
}

/// Outcome of a full simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Events processed.
    pub events: u64,
    /// Simulated end time (last processed event).
    pub end_time: SimTime,
    /// Flows completed during the run.
    pub flows_completed: usize,
    /// Whether the application reported success (all work done).
    pub app_done: bool,
    /// High-water mark of pending events in the scheduler.
    pub peak_pending: usize,
}

/// Couples a [`Network`] with an [`Application`] and runs them to completion.
#[derive(Debug)]
pub struct Simulation<A: Application> {
    /// The simulated cluster.
    pub net: Network,
    /// The workload.
    pub app: A,
    /// Hard wall on simulated time.
    pub time_limit: SimTime,
    /// Same-instant event ordering. [`TieBreak::Fifo`] (the default) is the
    /// production contract; `simverify` sets [`TieBreak::Permuted`] to prove
    /// results are independent of same-timestamp tie-break order.
    pub tie_break: TieBreak,
}

/// The destination lane of an event: its *handling* entity — the shard that
/// would own it. A host's timers share its device lane (one shard owns
/// both); the application and the metrics sampler each get a reserved lane.
#[inline]
fn event_dest_lane(ev: &Event) -> u16 {
    match ev {
        Event::Arrive { dev, .. } | Event::PortFree { dev, .. } => dev_lane(*dev),
        Event::HostTimers { host } => dev_lane(DevRef::Host(*host)),
        Event::AppTimer { .. } => APP_LANE,
        Event::Sample => SAMPLE_LANE,
    }
}

/// Pack an event's (destination, producer) pair into the tie-break lane.
///
/// Under [`TieBreak::Permuted`] the key orders same-instant events by
/// (seeded destination rank, source, FIFO): cross-destination order is
/// permuted — the freedom a sharded engine has — while one destination's
/// same-instant inbox keeps a *canonical* per-source order, independent of
/// the upstream execution interleaving. That is exactly the deterministic
/// per-channel merge a sharded engine performs, and it is what makes the
/// permutation check a sound conformance oracle: without the source key, a
/// permuted upstream order at time `t` would leak into the seq order of
/// same-destination arrivals at `t + delay` and diverge on queue physics.
#[inline]
fn event_tie_lane(src: u16, ev: &Event) -> u64 {
    simevent::pack_lane(event_dest_lane(ev), src)
}

impl<A: Application> Simulation<A> {
    /// Build a simulation with a default 1-hour simulated-time wall.
    pub fn new(net: Network, app: A) -> Self {
        Simulation {
            net,
            app,
            time_limit: SimTime::from_secs(3600),
            tie_break: TieBreak::Fifo,
        }
    }

    /// Run until the application is done, the event queue drains, or the
    /// time limit is hit.
    ///
    /// Uses the default hybrid scheduler backend — a calendar queue for plain
    /// transmission/arrival events plus a hierarchical timer wheel for the
    /// cancellable RTO-class timers; see [`Simulation::run_with_backend`] to
    /// pin a specific one.
    pub fn run(&mut self) -> RunReport {
        self.run_with_backend::<simevent::HybridQueue<Event>>()
    }

    /// Run on an explicit scheduler backend (e.g. the reference binary-heap
    /// [`simevent::EventQueue`] for benchmarking). Both backends pop in the
    /// same order, so the report is identical either way.
    pub fn run_with_backend<Q: QueueBackend<Event>>(&mut self) -> RunReport {
        let mut sched: Scheduler<Event, Q> = Scheduler::new(SchedulerConfig {
            time_limit: self.time_limit,
            event_limit: u64::MAX,
            tie_break: self.tie_break,
        });
        let net = &mut self.net;
        let app = &mut self.app;

        // One outstanding (cancellable) HostTimers event per host: when the
        // network re-arms a host to an earlier deadline, the superseded event
        // is cancelled instead of left to fire spuriously.
        let mut timer_handles: Vec<Option<TimerHandle>> = vec![None; net.num_hosts()];
        // Reused pending-event buffer: the per-event drain swaps it with the
        // network's (empty) buffer instead of allocating a fresh Vec.
        let mut inbox: Vec<(SimTime, u16, Event)> = Vec::new();

        fn drain(
            sched: &mut Scheduler<Event, impl QueueBackend<Event>>,
            inbox: &mut Vec<(SimTime, u16, Event)>,
            timer_handles: &mut [Option<TimerHandle>],
            net: &mut Network,
            now: SimTime,
        ) {
            net.swap_pending(inbox);
            for (t, src, e) in inbox.drain(..) {
                let t = t.max(now);
                let lane = event_tie_lane(src, &e);
                match e {
                    Event::HostTimers { host } => {
                        if let Some(h) = timer_handles[host].take() {
                            sched.cancel(h);
                        }
                        timer_handles[host] = Some(sched.schedule_cancellable_at_in_lane(
                            t,
                            lane,
                            Event::HostTimers { host },
                        ));
                    }
                    e => sched.schedule_at_in_lane(t, lane, e),
                }
            }
        }

        app.on_start(net, SimTime::ZERO);
        drain(
            &mut sched,
            &mut inbox,
            &mut timer_handles,
            net,
            SimTime::ZERO,
        );
        if app.done(net) {
            return RunReport {
                outcome: RunOutcome::Stopped,
                events: 0,
                end_time: SimTime::ZERO,
                flows_completed: net.completed_flows(),
                app_done: true,
                peak_pending: sched.peak_pending(),
            };
        }

        let (outcome, stats) = sched.run(|sched, now, ev| {
            match ev {
                Event::AppTimer { token } => app.on_timer(token, net, now),
                Event::HostTimers { host } => {
                    timer_handles[host] = None;
                    net.handle(Event::HostTimers { host }, now);
                }
                other => net.handle(other, now),
            }
            for f in net.take_completed() {
                app.on_flow_complete(f, net, now);
            }
            drain(sched, &mut inbox, &mut timer_handles, net, now);
            !app.done(net)
        });

        RunReport {
            outcome,
            events: stats.events_processed,
            end_time: stats.end_time,
            flows_completed: net.completed_flows(),
            app_done: app.done(net),
            peak_pending: sched.peak_pending(),
        }
    }

    /// The seed implementation's event loop, kept as the measured "before"
    /// of the perf report: binary-heap scheduler, a fresh pending-buffer
    /// allocation per event, and no `HostTimers` cancellation (superseded
    /// timer events fire spuriously). Pair with
    /// [`Network::set_reference_mode`] for a faithful end-to-end reference.
    /// Simulation results are identical to [`Simulation::run`]; only the
    /// event count can differ (spurious timer fires).
    pub fn run_reference(&mut self) -> RunReport {
        let mut sched: HeapScheduler<Event> = Scheduler::new(SchedulerConfig {
            time_limit: self.time_limit,
            event_limit: u64::MAX,
            tie_break: self.tie_break,
        });
        let net = &mut self.net;
        let app = &mut self.app;

        app.on_start(net, SimTime::ZERO);
        for (t, src, e) in net.take_pending() {
            let lane = event_tie_lane(src, &e);
            sched.schedule_at_in_lane(t, lane, e);
        }
        if app.done(net) {
            return RunReport {
                outcome: RunOutcome::Stopped,
                events: 0,
                end_time: SimTime::ZERO,
                flows_completed: net.completed_flows(),
                app_done: true,
                peak_pending: sched.peak_pending(),
            };
        }

        let (outcome, stats) = sched.run(|sched, now, ev| {
            match ev {
                Event::AppTimer { token } => app.on_timer(token, net, now),
                other => net.handle(other, now),
            }
            for f in net.take_completed() {
                app.on_flow_complete(f, net, now);
            }
            for (t, src, e) in net.take_pending() {
                let lane = event_tie_lane(src, &e);
                sched.schedule_at_in_lane(t.max(now), lane, e);
            }
            !app.done(net)
        });

        RunReport {
            outcome,
            events: stats.events_processed,
            end_time: stats.end_time,
            flows_completed: net.completed_flows(),
            app_done: app.done(net),
            peak_pending: sched.peak_pending(),
        }
    }
}

/// The simplest application: a fixed list of flows, each started at a given
/// time; done when every one has completed.
#[derive(Debug, Clone)]
pub struct StaticFlows {
    flows: Vec<(SimTime, NodeId, NodeId, u64, TcpConfig)>,
    started: usize,
}

impl StaticFlows {
    /// Flows as `(start_time, src, dst, bytes, config)`.
    pub fn new(flows: Vec<(SimTime, NodeId, NodeId, u64, TcpConfig)>) -> Self {
        StaticFlows { flows, started: 0 }
    }

    /// All flows start at t=0 with a shared config.
    pub fn all_at_zero(pairs: Vec<(NodeId, NodeId, u64)>, cfg: TcpConfig) -> Self {
        Self::new(
            pairs
                .into_iter()
                .map(|(s, d, b)| (SimTime::ZERO, s, d, b, cfg.clone()))
                .collect(),
        )
    }
}

impl Application for StaticFlows {
    fn on_start(&mut self, net: &mut Network, now: SimTime) {
        for (i, (at, src, dst, bytes, cfg)) in self.flows.iter().enumerate() {
            if *at <= now {
                net.add_flow(*src, *dst, *bytes, cfg.clone(), now);
                self.started += 1;
            } else {
                net.schedule_app_timer(*at, i as u64);
            }
        }
    }

    fn on_flow_complete(&mut self, _flow: FlowId, _net: &mut Network, _now: SimTime) {}

    fn on_timer(&mut self, token: u64, net: &mut Network, now: SimTime) {
        let (_, src, dst, bytes, cfg) = &self.flows[token as usize];
        net.add_flow(*src, *dst, *bytes, cfg.clone(), now);
        self.started += 1;
    }

    fn done(&self, net: &Network) -> bool {
        self.started == self.flows.len() && net.all_flows_complete()
    }
}
