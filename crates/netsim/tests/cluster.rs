//! Integration tests of the full network substrate.

use ecn_core::{ProtectionMode, QdiscSpec, RedConfig, SimpleMarkingConfig};
use netpacket::{NodeId, PacketKind};
use netsim::{ClusterSpec, LinkSpec, Network, Simulation, StaticFlows};
use simevent::{SimDuration, SimTime};
use tcpstack::{EcnMode, TcpConfig};

fn droptail_cluster(racks: u32, hosts_per_rack: u32, cap: u64, seed: u64) -> ClusterSpec {
    ClusterSpec {
        racks,
        hosts_per_rack,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(10, 5),
        switch_qdisc: QdiscSpec::DropTail {
            capacity_packets: cap,
        },
        host_buffer_packets: 2000,
        seed,
    }
}

fn run_flows(
    spec: ClusterSpec,
    pairs: Vec<(NodeId, NodeId, u64)>,
    cfg: TcpConfig,
) -> (netsim::RunReport, Network) {
    let net = Network::new(spec);
    let app = StaticFlows::all_at_zero(pairs, cfg);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = SimTime::from_secs(600);
    let report = sim.run();
    (report, sim.net)
}

#[test]
fn single_flow_same_rack() {
    let (report, net) = run_flows(
        droptail_cluster(1, 4, 100, 1),
        vec![(NodeId(0), NodeId(1), 1_000_000)],
        TcpConfig::default(),
    );
    assert!(report.app_done, "flow must complete: {report:?}");
    assert_eq!(net.total_bytes_received(), 1_000_000);
    assert_eq!(net.orphan_packets(), 0);
    let rec = net.flows().next().unwrap();
    assert!(rec.completed.is_some());
    // Sanity: 1 MB at 1 Gbps is at least 8 ms of wire time.
    assert!(rec.completed.unwrap() >= SimTime::from_millis(8));
}

#[test]
fn single_flow_cross_rack() {
    let (report, net) = run_flows(
        droptail_cluster(2, 2, 100, 1),
        vec![(NodeId(0), NodeId(3), 500_000)],
        TcpConfig::default(),
    );
    assert!(report.app_done);
    assert_eq!(net.total_bytes_received(), 500_000);
    // Cross-rack path: host->ToR0->core->ToR1->host; min latency is
    // 3 hops of 5us propagation plus serialisation.
    assert!(net.latency().min() >= SimDuration::from_micros(15));
}

#[test]
fn flow_throughput_approaches_line_rate() {
    let (_, net) = run_flows(
        droptail_cluster(1, 2, 200, 1),
        vec![(NodeId(0), NodeId(1), 20_000_000)],
        TcpConfig {
            recv_wnd: 4 << 20,
            ..TcpConfig::default()
        },
    );
    let rec = net.flows().next().unwrap();
    let dur = rec.completed.unwrap().since(rec.started);
    let gbps = 20_000_000.0 * 8.0 / dur.as_secs_f64() / 1e9;
    assert!(
        gbps > 0.80,
        "long flow should reach most of 1 Gbps, got {gbps:.3}"
    );
}

#[test]
fn incast_all_to_one_completes() {
    // 7 senders to 1 receiver through one ToR: classic incast. DropTail with
    // a reasonable buffer must survive via retransmissions.
    let pairs: Vec<_> = (1..8).map(|i| (NodeId(i), NodeId(0), 500_000)).collect();
    let (report, net) = run_flows(droptail_cluster(1, 8, 64, 3), pairs, TcpConfig::default());
    assert!(report.app_done, "incast must complete: {report:?}");
    assert_eq!(net.total_bytes_received(), 7 * 500_000);
    // The receiver's ToR down-port must have seen congestion.
    let stats = net.port_stats();
    assert!(
        stats.total.dropped_total() > 0,
        "incast with 64-pkt buffers should drop"
    );
}

#[test]
fn all_to_all_shuffle_completes() {
    let n = 6u32;
    let mut pairs = Vec::new();
    for s in 0..n {
        for d in 0..n {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 200_000));
            }
        }
    }
    let (report, net) = run_flows(
        droptail_cluster(2, 3, 100, 7),
        pairs.clone(),
        TcpConfig::default(),
    );
    assert!(report.app_done);
    assert_eq!(net.total_bytes_received(), pairs.len() as u64 * 200_000);
    assert_eq!(net.completed_flows(), pairs.len());
}

#[test]
fn deep_buffers_inflate_latency_bufferbloat() {
    // Same workload, shallow vs deep DropTail: deep buffers must show much
    // higher mean packet latency (the Bufferbloat the paper discusses).
    let workload = |cap: u64| {
        let pairs: Vec<_> = (1..6).map(|i| (NodeId(i), NodeId(0), 1_000_000)).collect();
        let (report, net) = run_flows(droptail_cluster(1, 6, cap, 5), pairs, TcpConfig::default());
        assert!(report.app_done);
        net.latency().mean()
    };
    let shallow = workload(50);
    let deep = workload(1000);
    assert!(
        deep.as_nanos() > shallow.as_nanos() * 3,
        "bufferbloat: deep {deep} should dwarf shallow {shallow}"
    );
}

#[test]
fn red_default_mode_early_drops_acks_under_shuffle() {
    // The paper's pathology, observed end to end: an ECN-enabled RED queue in
    // Default mode early-drops pure ACKs during an all-to-all shuffle.
    let red = RedConfig::from_target_delay(
        SimDuration::from_micros(200),
        1_000_000_000,
        1526,
        100,
        ProtectionMode::Default,
    );
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::Red(red),
        ..droptail_cluster(1, 6, 100, 11)
    };
    let mut pairs = Vec::new();
    for s in 0..6u32 {
        for d in 0..6u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 400_000));
            }
        }
    }
    let (report, net) = run_flows(spec, pairs, TcpConfig::with_ecn(EcnMode::Ecn));
    assert!(report.app_done);
    let stats = net.port_stats();
    let ack_early = stats.total.dropped_early.get(PacketKind::PureAck);
    let data_early = stats.total.dropped_early.get(PacketKind::Data);
    assert!(
        ack_early > 0,
        "default RED must early-drop ACKs in a shuffle"
    );
    assert_eq!(
        data_early, 0,
        "ECT data must be marked, never early-dropped"
    );
    assert!(
        stats.total.marked.get(PacketKind::Data) > 0,
        "data must get CE marks"
    );
}

#[test]
fn red_ack_syn_mode_protects_acks_end_to_end() {
    let red = RedConfig::from_target_delay(
        SimDuration::from_micros(200),
        1_000_000_000,
        1526,
        100,
        ProtectionMode::AckSyn,
    );
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::Red(red),
        ..droptail_cluster(1, 6, 100, 11)
    };
    let mut pairs = Vec::new();
    for s in 0..6u32 {
        for d in 0..6u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 400_000));
            }
        }
    }
    let (report, net) = run_flows(spec, pairs, TcpConfig::with_ecn(EcnMode::Ecn));
    assert!(report.app_done);
    let stats = net.port_stats();
    assert_eq!(
        stats.total.dropped_early.get(PacketKind::PureAck),
        0,
        "ack+syn mode must never early-drop ACKs"
    );
    assert_eq!(stats.total.dropped_early.get(PacketKind::Syn), 0);
    assert_eq!(stats.total.dropped_early.get(PacketKind::SynAck), 0);
}

#[test]
fn simple_marking_never_early_drops() {
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 100,
            threshold_packets: 17,
        }),
        ..droptail_cluster(1, 6, 100, 13)
    };
    let mut pairs = Vec::new();
    for s in 0..6u32 {
        for d in 0..6u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 400_000));
            }
        }
    }
    let (report, net) = run_flows(spec, pairs, TcpConfig::with_ecn(EcnMode::Dctcp));
    assert!(report.app_done);
    let stats = net.port_stats();
    assert_eq!(stats.total.dropped_early.total(), 0);
    assert!(
        stats.total.marked.total() > 0,
        "DCTCP traffic should get marked"
    );
}

#[test]
fn queue_trace_records_composition() {
    let spec = droptail_cluster(1, 4, 200, 17);
    let mut net = Network::new(spec);
    // Trace the ToR egress port toward host 0 (switch 0, port 0).
    net.enable_queue_trace(0, 0, SimDuration::from_micros(100), 50_000);
    let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 500_000)).collect();
    let app = StaticFlows::all_at_zero(pairs, TcpConfig::default());
    let mut sim = Simulation::new(net, app);
    sim.time_limit = SimTime::from_secs(60);
    let report = sim.run();
    assert!(report.app_done);
    let trace = sim.net.queue_trace().expect("trace enabled");
    assert!(
        trace.peak_packets() > 0,
        "the incast port must queue packets"
    );
    assert!(trace.samples().len() > 10);
    // Composition: the congested direction carries data, so data should
    // dominate its queue (the paper's Fig. 1 shape).
    assert!(
        trace.mean_data_fraction() > 0.5,
        "got {}",
        trace.mean_data_fraction()
    );
}

#[test]
fn staggered_start_times_respected() {
    let net = Network::new(droptail_cluster(1, 3, 100, 19));
    let cfg = TcpConfig::default();
    let app = StaticFlows::new(vec![
        (SimTime::ZERO, NodeId(0), NodeId(1), 10_000, cfg.clone()),
        (
            SimTime::from_millis(50),
            NodeId(1),
            NodeId(2),
            10_000,
            cfg.clone(),
        ),
    ]);
    let mut sim = Simulation::new(net, app);
    let report = sim.run();
    assert!(report.app_done);
    let recs: Vec<_> = sim.net.flows().collect();
    assert_eq!(recs.len(), 2);
    let second = recs.iter().find(|r| r.src == NodeId(1)).unwrap();
    assert_eq!(second.started, SimTime::from_millis(50));
    assert!(second.completed.unwrap() > SimTime::from_millis(50));
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut pairs = Vec::new();
        for s in 0..4u32 {
            for d in 0..4u32 {
                if s != d {
                    pairs.push((NodeId(s), NodeId(d), 300_000));
                }
            }
        }
        let red = RedConfig::from_target_delay(
            SimDuration::from_micros(500),
            1_000_000_000,
            1526,
            100,
            ProtectionMode::EceBit,
        );
        let spec = ClusterSpec {
            switch_qdisc: QdiscSpec::Red(red),
            ..droptail_cluster(2, 2, 100, 99)
        };
        let (report, net) = run_flows(spec, pairs, TcpConfig::with_ecn(EcnMode::Ecn));
        (
            report.events,
            report.end_time,
            net.latency().count(),
            net.latency().mean().as_nanos(),
            net.sender_stats_total(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn plain_tcp_data_is_never_marked() {
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::Red(RedConfig::from_target_delay(
            SimDuration::from_micros(200),
            1_000_000_000,
            1526,
            100,
            ProtectionMode::Default,
        )),
        ..droptail_cluster(1, 4, 100, 23)
    };
    let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 400_000)).collect();
    let (report, net) = run_flows(spec, pairs, TcpConfig::default()); // ECN off
    assert!(report.app_done);
    let stats = net.port_stats();
    assert_eq!(
        stats.total.marked.total(),
        0,
        "non-ECN traffic cannot be CE-marked"
    );
    // Without ECN, RED signals by dropping data too.
    assert!(stats.total.dropped_early.get(PacketKind::Data) > 0);
}

#[test]
fn latency_probes_alongside_bulk_traffic() {
    use netsim::{LatencyProbes, PairApp};
    let spec = droptail_cluster(1, 4, 100, 41);
    let net = Network::new(spec);
    // Primary: three bulk flows into host 0. Secondary: 20kB probes every 2ms.
    let bulk = StaticFlows::all_at_zero(
        (1..4).map(|i| (NodeId(i), NodeId(0), 800_000)).collect(),
        TcpConfig::default(),
    );
    let probes = LatencyProbes::new(4, 20_000, SimDuration::from_millis(2), TcpConfig::default());
    let mut sim = Simulation::new(net, PairApp::new(bulk, probes));
    sim.time_limit = SimTime::from_secs(120);
    let report = sim.run();
    assert!(report.app_done, "primary decides completion: {report:?}");
    let probes = &sim.app.secondary;
    assert!(
        probes.launched() > 3,
        "probes must keep launching during the bulk transfer"
    );
    assert!(probes.completed() > 0, "some probes must complete");
    assert!(probes.fct().mean() > SimDuration::ZERO);
    assert_eq!(probes.fct_samples().len() as u64, probes.completed());
    // Bulk flows all arrived in full despite the probes.
    let bulk_bytes: u64 = sim
        .net
        .flows()
        .filter(|r| r.bytes == 800_000)
        .map(|r| r.bytes)
        .sum();
    assert_eq!(bulk_bytes, 3 * 800_000);
}

#[test]
fn pair_app_routes_timers_without_crosstalk() {
    use netsim::{LatencyProbes, PairApp};
    // Primary uses staggered starts (its own app timers) while the secondary
    // probes run — both must fire correctly.
    let spec = droptail_cluster(1, 4, 100, 43);
    let net = Network::new(spec);
    let cfg = TcpConfig::default();
    let bulk = StaticFlows::new(vec![
        (
            SimTime::from_millis(1),
            NodeId(1),
            NodeId(0),
            100_000,
            cfg.clone(),
        ),
        (
            SimTime::from_millis(7),
            NodeId(2),
            NodeId(0),
            100_000,
            cfg.clone(),
        ),
    ]);
    let probes = LatencyProbes::new(4, 10_000, SimDuration::from_millis(3), cfg);
    let mut sim = Simulation::new(net, PairApp::new(bulk, probes));
    let report = sim.run();
    assert!(report.app_done);
    assert_eq!(
        sim.net
            .flows()
            .filter(|r| r.bytes == 100_000 && r.completed.is_some())
            .count(),
        2,
        "both staggered primary flows must run"
    );
    assert!(sim.app.secondary.completed() > 0);
}

#[test]
fn codel_cluster_completes_and_marks() {
    use ecn_core::CoDelConfig;
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::CoDel(CoDelConfig {
            capacity_packets: 100,
            target: SimDuration::from_micros(300),
            interval: SimDuration::from_millis(1),
            ecn: true,
            protection: ProtectionMode::AckSyn,
        }),
        ..droptail_cluster(1, 6, 100, 47)
    };
    let mut pairs = Vec::new();
    for s in 0..6u32 {
        for d in 0..6u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 400_000));
            }
        }
    }
    let (report, net) = run_flows(spec, pairs, TcpConfig::with_ecn(EcnMode::Dctcp));
    assert!(report.app_done);
    let stats = net.port_stats();
    assert_eq!(
        stats.total.dropped_early.get(PacketKind::PureAck),
        0,
        "protected"
    );
    assert!(
        stats.total.marked.get(PacketKind::Data) > 0,
        "persistent shuffle queues must mark"
    );
}

#[test]
fn ecn_plus_plus_host_side_fix_eliminates_early_drops() {
    // ECN++-style hosts (control packets sent ECT) under a STOCK Default-mode
    // RED switch: nothing is non-ECT any more, so nothing gets early-dropped.
    // The host-side mirror of the paper's switch-side fix.
    let red = RedConfig::from_target_delay(
        SimDuration::from_micros(200),
        1_000_000_000,
        1526,
        100,
        ProtectionMode::Default,
    );
    let spec = ClusterSpec {
        switch_qdisc: QdiscSpec::Red(red),
        ..droptail_cluster(1, 6, 100, 53)
    };
    let mut pairs = Vec::new();
    for s in 0..6u32 {
        for d in 0..6u32 {
            if s != d {
                pairs.push((NodeId(s), NodeId(d), 400_000));
            }
        }
    }
    let cfg = TcpConfig {
        ect_control_packets: true,
        ..TcpConfig::with_ecn(EcnMode::Ecn)
    };
    let (report, net) = run_flows(spec, pairs, cfg);
    assert!(report.app_done);
    let stats = net.port_stats();
    assert_eq!(
        stats.total.dropped_early.total(),
        0,
        "everything is ECT under ECN++"
    );
    assert!(
        stats.total.marked.get(PacketKind::PureAck) > 0,
        "ACKs are marked instead of dropped"
    );
}

#[test]
fn oversubscribed_uplink_congests_the_core() {
    // 4:1 oversubscription: 4 hosts/rack at 1 Gbps share a 1 Gbps uplink.
    // Cross-rack all-to-all must congest the core/uplink ports, not the ToR
    // down-ports alone.
    let spec = ClusterSpec {
        racks: 2,
        hosts_per_rack: 4,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(1, 5), // deliberately NOT 10G
        switch_qdisc: QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        host_buffer_packets: 2000,
        seed: 59,
    };
    let mut pairs = Vec::new();
    for s in 0..4u32 {
        // strictly cross-rack traffic
        pairs.push((NodeId(s), NodeId(s + 4), 1_000_000));
        pairs.push((NodeId(s + 4), NodeId(s), 1_000_000));
    }
    let (report, net) = run_flows(spec, pairs, TcpConfig::default());
    assert!(report.app_done);
    let per_port = net.port_stats();
    // Find the ToR uplink ports (index 4 on each ToR) and assert they queued.
    let uplink_peak: u64 = per_port
        .ports
        .iter()
        .filter(|(name, _)| name.starts_with("sw0/p4") || name.starts_with("sw1/p4"))
        .map(|(_, s)| s.max_len_packets)
        .max()
        .unwrap_or(0);
    assert!(
        uplink_peak > 10,
        "oversubscribed uplinks must build queues: {uplink_peak}"
    );
}
