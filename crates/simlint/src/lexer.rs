//! A minimal hand-rolled Rust token scanner.
//!
//! The linter needs exactly one property from its front end: **never mistake
//! text inside comments, strings, or char literals for code**. Everything
//! else — full expression structure, macro expansion, type resolution — is
//! deliberately out of scope; the rules work on flat token streams.
//!
//! Tokens carry 1-based line numbers so diagnostics point at real source
//! locations.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `as`, `use`, ...).
    Ident,
    /// A single punctuation character (`.`, `<`, `(` ...). Multi-character
    /// operators arrive as consecutive tokens.
    Punct(char),
    /// A numeric literal, consumed as one token so `1.0` emits no `.`.
    Number,
    /// A lifetime (`'a`), kept distinct so it is never confused with a
    /// char literal.
    Lifetime,
}

/// One token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number in the scanned file.
    pub line: u32,
    /// Classification.
    pub kind: TokenKind,
    /// Source text for identifiers and lifetimes; single character for
    /// punctuation; the raw digits for numbers.
    pub text: String,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Scan `source` into tokens, stripping comments, strings, and char
/// literals. Unterminated constructs are tolerated (the scanner stops at end
/// of input): the linter must degrade gracefully on code rustc would reject.
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }

        // Raw strings (r"...", r#"..."#) and raw byte strings (br#"..."#).
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let start = if c == 'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // It is a raw string: skip to the matching `"###`.
                i = j + 1;
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0usize;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    bump_line!(chars[i]);
                    i += 1;
                }
                continue;
            }
            // Not a raw string (`r` / `br` was an ordinary ident prefix);
            // fall through to identifier handling below.
        }

        // Ordinary and byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            i += if c == 'b' { 2 } else { 1 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    ch => {
                        bump_line!(ch);
                        i += 1;
                    }
                }
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                && chars.get(i + 2) != Some(&'\'');
            if is_lifetime {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Token {
                    line,
                    kind: TokenKind::Lifetime,
                    text: chars[start..j].iter().collect(),
                });
                i = j;
            } else {
                // Char literal: '\n', 'x', '\u{1F600}' ...
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        ch => {
                            bump_line!(ch);
                            i += 1;
                        }
                    }
                }
            }
            continue;
        }

        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                line,
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }

        // Number: digits, radix prefixes, suffixes, and a fractional part —
        // consumed whole so `1.5` never emits a `.` punct token.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            out.push(Token {
                line,
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }

        if !c.is_whitespace() {
            out.push(Token {
                line,
                kind: TokenKind::Punct(c),
                text: c.to_string(),
            });
        }
        bump_line!(c);
        i += 1;
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // HashMap here\n/* Instant\n nested /* SystemTime */ */ let b;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn strips_strings_and_raw_strings() {
        let src = r##"let s = "unwrap()"; let r = r#"thread_rng"#; let b = b"expect";"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "thread_rng" || i == "expect"));
    }

    #[test]
    fn lifetime_is_not_a_char_literal() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "a"));
        // The body of the char literal must not leak an ident `x` beyond the
        // parameter one.
        let xs = toks.iter().filter(|t| t.is_ident("x")).count();
        assert_eq!(xs, 1);
    }

    #[test]
    fn numbers_swallow_fraction() {
        let toks = lex("let f = 1.5f64;");
        assert!(!toks.iter().any(|t| t.is_punct('.')));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "1.5f64"));
    }

    #[test]
    fn tuple_field_access_keeps_dot() {
        let toks = lex("x.0");
        assert!(toks.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\";\nlet hit = 0;";
        let toks = lex(src);
        let hit = toks.iter().find(|t| t.is_ident("hit")).expect("hit token");
        assert_eq!(hit.line, 3);
    }

    #[test]
    fn method_call_tokens() {
        let toks = lex("v.unwrap()");
        let i = toks.iter().position(|t| t.is_ident("unwrap")).expect("pos");
        assert!(toks[i - 1].is_punct('.'));
        assert!(toks[i + 1].is_punct('('));
    }
}
