//! Quantified checks of the paper's headline claims (§IV / §VI).

use crate::scenario::{BufferDepth, QueueKind, Transport};
use crate::sweep::SweepResults;
use ecn_core::ProtectionMode;
use serde::{Deserialize, Serialize};

/// The paper's headline numbers, recomputed from a sweep.
///
/// Paper claims (CLUSTER 2017, §IV and §VI):
/// * stock AQM marking ("Default") costs throughput — prior work reported a
///   ~20% loss;
/// * protecting ACKs (ACK+SYN) restores full throughput and can *boost* TCP
///   ~10% over DropTail when marking is aggressive;
/// * latency drops by ~85% (shallow, vs DropTail) while holding throughput;
/// * a true simple marking scheme gives the robustness of both without AQM
///   tuning;
/// * shallow-buffer switches reach deep-buffer DropTail throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimsReport {
    /// Worst normalised throughput of RED\[default\] at tight target delays
    /// (≤ 200 µs) on shallow buffers — the paper's problem case. `1.0` = the
    /// DropTail-shallow baseline; the paper expects a clear loss here.
    pub red_default_tight_throughput: f64,
    /// Best normalised throughput of RED\[ack+syn\] on shallow buffers across
    /// the sweep (paper: ≈ 1.1).
    pub ack_syn_best_throughput: f64,
    /// Best normalised throughput of the simple marking scheme on shallow
    /// buffers (paper: ≥ 1.0).
    pub simple_marking_best_throughput: f64,
    /// Lowest normalised latency achieved on shallow buffers by any protected
    /// configuration whose throughput is ≥ 95% of baseline (paper: ≈ 0.15,
    /// i.e. an 85% reduction).
    pub best_latency_at_full_throughput: f64,
    /// Lowest normalised latency on deep buffers (vs DropTail deep; paper
    /// reports ~60% reduction there).
    pub deep_best_latency: f64,
    /// Shallow simple-marking throughput relative to DropTail-DEEP throughput
    /// (paper: commodity switches can match deep-buffer switches, ≈ 1.0).
    pub shallow_marking_vs_deep_droptail: f64,
}

fn ratio_or_nan(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::NAN
    }
}

/// Compute the claims from a sweep.
pub fn claims(res: &SweepResults) -> ClaimsReport {
    let base_tput = res.baseline_shallow.throughput_per_node_bps;
    let base_lat_shallow = res.baseline_shallow.mean_latency_s;
    let base_lat_deep = res.baseline_deep.mean_latency_s;

    let shallow: Vec<_> = res.at_depth(BufferDepth::Shallow).collect();
    let deep: Vec<_> = res.at_depth(BufferDepth::Deep).collect();

    let red_default_tight_throughput = shallow
        .iter()
        .filter(|p| p.queue == QueueKind::Red(ProtectionMode::Default) && p.delay_us <= 200)
        .map(|p| ratio_or_nan(p.metrics.throughput_per_node_bps, base_tput))
        .fold(f64::INFINITY, f64::min);

    let ack_syn_best_throughput = shallow
        .iter()
        .filter(|p| p.queue == QueueKind::Red(ProtectionMode::AckSyn))
        .map(|p| ratio_or_nan(p.metrics.throughput_per_node_bps, base_tput))
        .fold(0.0f64, f64::max);

    let simple_marking_best_throughput = shallow
        .iter()
        .filter(|p| p.queue == QueueKind::SimpleMarking)
        .map(|p| ratio_or_nan(p.metrics.throughput_per_node_bps, base_tput))
        .fold(0.0f64, f64::max);

    let best_latency_at_full_throughput = shallow
        .iter()
        .filter(|p| {
            matches!(
                p.queue,
                QueueKind::Red(ProtectionMode::EceBit)
                    | QueueKind::Red(ProtectionMode::AckSyn)
                    | QueueKind::SimpleMarking
            ) && ratio_or_nan(p.metrics.throughput_per_node_bps, base_tput) >= 0.95
        })
        .map(|p| ratio_or_nan(p.metrics.mean_latency_s, base_lat_shallow))
        .fold(f64::INFINITY, f64::min);

    let deep_best_latency = deep
        .iter()
        .filter(|p| p.queue != QueueKind::Red(ProtectionMode::Default))
        .map(|p| ratio_or_nan(p.metrics.mean_latency_s, base_lat_deep))
        .fold(f64::INFINITY, f64::min);

    let shallow_marking_vs_deep_droptail = shallow
        .iter()
        .filter(|p| p.queue == QueueKind::SimpleMarking)
        .map(|p| {
            ratio_or_nan(
                p.metrics.throughput_per_node_bps,
                res.baseline_deep.throughput_per_node_bps,
            )
        })
        .fold(0.0f64, f64::max);

    let _ = Transport::Tcp; // transports are already folded into the points

    ClaimsReport {
        red_default_tight_throughput,
        ack_syn_best_throughput,
        simple_marking_best_throughput,
        best_latency_at_full_throughput,
        deep_best_latency,
        shallow_marking_vs_deep_droptail,
    }
}

/// Direction-of-effect gates on the headline claims: each measured value must
/// land on the paper's side of a deliberately loose threshold, so the checks
/// hold at both `--tiny` and full scale while still catching a regression
/// that erases the pathology or breaks one of the fixes. A non-finite value
/// (empty sweep slice) always fails. Returns one description per failed gate;
/// empty means every claim reproduced.
pub fn check_claims(c: &ClaimsReport) -> Vec<String> {
    let mut failures = Vec::new();
    let mut gate = |desc: &str, value: f64, pass: bool| {
        if !value.is_finite() || !pass {
            failures.push(format!("{desc} (measured {value:.3})"));
        }
    };
    gate(
        "RED[default] tight thresholds must lose throughput: expected < 0.9",
        c.red_default_tight_throughput,
        c.red_default_tight_throughput < 0.9,
    );
    gate(
        "RED[ack+syn] must restore throughput: expected > 0.9",
        c.ack_syn_best_throughput,
        c.ack_syn_best_throughput > 0.9,
    );
    gate(
        "simple marking must match protected throughput: expected > 0.9",
        c.simple_marking_best_throughput,
        c.simple_marking_best_throughput > 0.9,
    );
    gate(
        "latency must drop at full throughput (shallow): expected < 0.9",
        c.best_latency_at_full_throughput,
        c.best_latency_at_full_throughput < 0.9,
    );
    gate(
        "latency must drop on deep buffers: expected < 0.9",
        c.deep_best_latency,
        c.deep_best_latency < 0.9,
    );
    gate(
        "shallow marking must approach deep DropTail throughput: expected > 0.8",
        c.shallow_marking_vs_deep_droptail,
        c.shallow_marking_vs_deep_droptail > 0.8,
    );
    failures
}

/// Render the claims table with the paper's expectations alongside.
pub fn render_claims(c: &ClaimsReport) -> String {
    let mut s = String::new();
    s.push_str("== Paper claims vs measured (normalised to DropTail baselines) ==\n");
    s.push_str(&format!(
        "{:<52} {:>10} {:>12}\n",
        "claim", "paper", "measured"
    ));
    let rows = [
        (
            "RED[default] tight thresholds hurt throughput",
            "~0.8".to_string(),
            format!("{:.3}", c.red_default_tight_throughput),
        ),
        (
            "RED[ack+syn] best throughput (shallow)",
            "~1.1".to_string(),
            format!("{:.3}", c.ack_syn_best_throughput),
        ),
        (
            "simple marking best throughput (shallow)",
            ">=1.0".to_string(),
            format!("{:.3}", c.simple_marking_best_throughput),
        ),
        (
            "best latency at >=95% throughput (shallow)",
            "~0.15".to_string(),
            format!("{:.3}", c.best_latency_at_full_throughput),
        ),
        (
            "best latency on deep buffers (vs droptail deep)",
            "~0.4".to_string(),
            format!("{:.3}", c.deep_best_latency),
        ),
        (
            "shallow marking vs DEEP droptail throughput",
            "~1.0".to_string(),
            format!("{:.3}", c.shallow_marking_vs_deep_droptail),
        ),
    ];
    for (claim, paper, measured) in rows {
        s.push_str(&format!("{claim:<52} {paper:>10} {measured:>12}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::RunMetrics;
    use crate::sweep::{SweepGrid, SweepPoint};

    fn metrics(tput: f64, lat: f64) -> RunMetrics {
        RunMetrics {
            runtime_s: 1.0,
            throughput_per_node_bps: tput,
            mean_latency_s: lat,
            p99_latency_s: lat * 2.0,
            acks_early_dropped: 0,
            handshake_early_dropped: 0,
            data_marked: 0,
            full_drops: 0,
            timeouts: 0,
            fast_retransmits: 0,
            syn_retransmits: 0,
            cc_fallbacks: 0,
            completed: true,
        }
    }

    fn point(q: QueueKind, d: BufferDepth, delay: u64, tput: f64, lat: f64) -> SweepPoint {
        SweepPoint {
            transport: Transport::TcpEcn,
            queue: q,
            depth: d,
            delay_us: delay,
            metrics: metrics(tput, lat),
        }
    }

    #[test]
    fn claims_math() {
        let res = SweepResults {
            grid: SweepGrid::tiny(),
            baseline_shallow: metrics(100.0, 1.0),
            baseline_deep: metrics(110.0, 5.0),
            points: vec![
                point(
                    QueueKind::Red(ProtectionMode::Default),
                    BufferDepth::Shallow,
                    100,
                    80.0,
                    0.4,
                ),
                point(
                    QueueKind::Red(ProtectionMode::AckSyn),
                    BufferDepth::Shallow,
                    100,
                    112.0,
                    0.2,
                ),
                point(
                    QueueKind::SimpleMarking,
                    BufferDepth::Shallow,
                    100,
                    108.0,
                    0.15,
                ),
                point(
                    QueueKind::Red(ProtectionMode::EceBit),
                    BufferDepth::Shallow,
                    500,
                    97.0,
                    0.1,
                ),
                point(
                    QueueKind::Red(ProtectionMode::AckSyn),
                    BufferDepth::Deep,
                    500,
                    111.0,
                    2.0,
                ),
            ],
        };
        let c = claims(&res);
        assert!((c.red_default_tight_throughput - 0.8).abs() < 1e-9);
        assert!((c.ack_syn_best_throughput - 1.12).abs() < 1e-9);
        assert!((c.simple_marking_best_throughput - 1.08).abs() < 1e-9);
        // ece-bit point at 0.97 tput qualifies; latency 0.1/1.0 = 0.1.
        assert!((c.best_latency_at_full_throughput - 0.1).abs() < 1e-9);
        assert!((c.deep_best_latency - 0.4).abs() < 1e-9);
        assert!((c.shallow_marking_vs_deep_droptail - 108.0 / 110.0).abs() < 1e-9);
        let rendered = render_claims(&c);
        assert!(rendered.contains("measured"));
        assert!(rendered.contains("1.120"));
    }

    fn healthy_report() -> ClaimsReport {
        ClaimsReport {
            red_default_tight_throughput: 0.21,
            ack_syn_best_throughput: 1.1,
            simple_marking_best_throughput: 1.05,
            best_latency_at_full_throughput: 0.22,
            deep_best_latency: 0.4,
            shallow_marking_vs_deep_droptail: 1.0,
        }
    }

    #[test]
    fn healthy_claims_pass_every_gate() {
        assert!(check_claims(&healthy_report()).is_empty());
    }

    #[test]
    fn erased_pathology_fails_the_gate() {
        // If RED[default] no longer hurts throughput, the reproduction of the
        // paper's core finding is broken and the gate must say so.
        let mut c = healthy_report();
        c.red_default_tight_throughput = 0.99;
        let failures = check_claims(&c);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("RED[default]"), "{failures:?}");
    }

    #[test]
    fn broken_fix_fails_the_gate() {
        let mut c = healthy_report();
        c.ack_syn_best_throughput = 0.5;
        c.deep_best_latency = 1.2;
        assert_eq!(check_claims(&c).len(), 2);
    }

    #[test]
    fn nan_claims_always_fail() {
        // A NaN means the sweep slice backing the claim was empty; silence
        // here would hide a broken grid, so NaN fails even on "<" gates.
        let mut c = healthy_report();
        c.best_latency_at_full_throughput = f64::NAN;
        assert_eq!(check_claims(&c).len(), 1);
    }
}
