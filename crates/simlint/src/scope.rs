//! Token-tree scoping: one brace-matching pass that labels every token with
//! its enclosing item context.
//!
//! The original rules (SL001–SL006) are pure pattern matches over the token
//! stream; the deeper rules need to know *where* a token sits: SL008 flags
//! interior-mutability types only when they appear **inside a type
//! definition** (a `RefCell` local in a test helper is noise, a `RefCell`
//! field in simulation state is a determinism hazard), and diagnostics read
//! better when they can name the enclosing function. [`ScopeMap::build`]
//! computes both in a single linear pass over the brace structure:
//!
//! - a keyword (`struct`/`enum`/`union`, `fn`, `impl`/`trait`) arms a
//!   *pending* frame kind, which the next `{` consumes; a `;` at
//!   square-bracket depth 0 disarms it (tuple structs, trait method
//!   signatures);
//! - `fn` only arms when followed by an identifier, so `fn(u32) -> u32`
//!   pointer types in field declarations never open a phantom body;
//! - a token is "in a type definition" when the innermost `struct`-like
//!   frame is not shadowed by a `fn` frame above it — enum-variant braces
//!   (`A { x: u32 }`) open an anonymous frame and correctly inherit the
//!   type-definition context, while `fn` bodies reset it.
//!
//! This is a heuristic over tokens, not a parse: `macro_rules!` bodies and
//! exotic macro input can mislabel a region. For lint rules (backed by the
//! waiver mechanism) that trade-off is fine.

use crate::lexer::{Token, TokenKind};

/// What opened a brace frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    /// `struct` / `enum` / `union` body.
    TypeDef,
    /// A `fn` body; the payload indexes into the interned name list.
    Fn(u32),
    /// An `impl` or `trait` block.
    Impl,
    /// Any other brace pair: expression blocks, match arms, modules, …
    Other,
}

/// Sentinel for "no enclosing fn".
const NO_FN: u32 = u32::MAX;

/// Per-token scope labels for one file.
#[derive(Debug)]
pub struct ScopeMap {
    in_type_def: Vec<bool>,
    enclosing_fn: Vec<u32>,
    fn_names: Vec<String>,
}

/// Saved state restored when a frame closes.
struct Frame {
    kind: FrameKind,
    prev_td: bool,
    prev_fn: u32,
}

impl ScopeMap {
    /// Label every token in `tokens`.
    pub fn build(tokens: &[Token]) -> ScopeMap {
        let mut in_type_def = vec![false; tokens.len()];
        let mut enclosing_fn = vec![NO_FN; tokens.len()];
        let mut fn_names: Vec<String> = Vec::new();

        let mut stack: Vec<Frame> = Vec::new();
        let mut pending: Option<FrameKind> = None;
        let mut cur_td = false;
        let mut cur_fn = NO_FN;
        // `[u8; N]` semicolons must not disarm a pending item keyword.
        let mut bracket_depth = 0usize;

        for (i, t) in tokens.iter().enumerate() {
            if t.kind == TokenKind::Ident {
                match t.text.as_str() {
                    "struct" | "enum" | "union" => pending = Some(FrameKind::TypeDef),
                    "impl" | "trait" => pending = Some(FrameKind::Impl),
                    "fn" => {
                        // Only a named fn opens a body; `fn(u32)` is a type.
                        if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident)
                        {
                            let id = fn_names.len() as u32;
                            fn_names.push(name.text.clone());
                            pending = Some(FrameKind::Fn(id));
                        }
                    }
                    _ => {}
                }
            } else if t.is_punct('[') {
                bracket_depth += 1;
            } else if t.is_punct(']') {
                bracket_depth = bracket_depth.saturating_sub(1);
            } else if t.is_punct(';') && bracket_depth == 0 {
                // Braceless item: unit/tuple struct, trait method signature.
                pending = None;
            } else if t.is_punct('{') {
                let kind = pending.take().unwrap_or(FrameKind::Other);
                stack.push(Frame {
                    kind,
                    prev_td: cur_td,
                    prev_fn: cur_fn,
                });
                match kind {
                    FrameKind::TypeDef => cur_td = true,
                    FrameKind::Fn(id) => {
                        cur_td = false;
                        cur_fn = id;
                    }
                    FrameKind::Impl | FrameKind::Other => {}
                }
            }

            in_type_def[i] = cur_td;
            enclosing_fn[i] = cur_fn;

            if t.is_punct('}') {
                if let Some(f) = stack.pop() {
                    let _ = f.kind;
                    cur_td = f.prev_td;
                    cur_fn = f.prev_fn;
                }
            }
        }

        ScopeMap {
            in_type_def,
            enclosing_fn,
            fn_names,
        }
    }

    /// Token `i` sits inside a `struct`/`enum`/`union` body (a field or
    /// variant declaration), not inside any `fn` body nested above it.
    pub fn in_type_def(&self, i: usize) -> bool {
        self.in_type_def.get(i).copied().unwrap_or(false)
    }

    /// Name of the innermost `fn` whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&str> {
        let id = *self.enclosing_fn.get(i)?;
        if id == NO_FN {
            None
        } else {
            Some(&self.fn_names[id as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> (Vec<Token>, ScopeMap) {
        let tokens = lex(src);
        let m = ScopeMap::build(&tokens);
        (tokens, m)
    }

    fn idx_of(tokens: &[Token], text: &str) -> usize {
        tokens
            .iter()
            .position(|t| t.text == text)
            .unwrap_or_else(|| panic!("token {text:?} not found"))
    }

    #[test]
    fn struct_fields_are_type_def_fn_bodies_are_not() {
        let src = "struct S { field: RefCell<u8> }\n\
                   fn work() { let local = RefCell::new(0); }";
        let (tokens, m) = map(src);
        assert!(m.in_type_def(idx_of(&tokens, "field")));
        assert!(!m.in_type_def(idx_of(&tokens, "local")));
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "local")), Some("work"));
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "field")), None);
    }

    #[test]
    fn enum_variant_braces_inherit_type_def() {
        let src = "enum E { A { x: u8 }, B(u16) }";
        let (tokens, m) = map(src);
        assert!(m.in_type_def(idx_of(&tokens, "x")));
    }

    #[test]
    fn impl_methods_are_fn_scope_not_type_def() {
        let src = "impl S { fn tick(&mut self) { self.count += 1; } }";
        let (tokens, m) = map(src);
        assert!(!m.in_type_def(idx_of(&tokens, "count")));
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "count")), Some("tick"));
    }

    #[test]
    fn nested_local_struct_in_fn_is_type_def() {
        let src = "fn outer() { struct Local { y: u8 } let z = 1; }";
        let (tokens, m) = map(src);
        assert!(m.in_type_def(idx_of(&tokens, "y")));
        assert!(!m.in_type_def(idx_of(&tokens, "z")));
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "z")), Some("outer"));
    }

    #[test]
    fn fn_pointer_field_does_not_open_a_body() {
        let src = "struct S { cb: fn(u32) -> u32, after: u8 }";
        let (tokens, m) = map(src);
        assert!(m.in_type_def(idx_of(&tokens, "after")));
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "after")), None);
    }

    #[test]
    fn tuple_struct_and_trait_signature_disarm_pending() {
        let src = "struct Unit(u8);\n\
                   trait T { fn sig(&self, xs: [u8; 4]); }\n\
                   fn real() { let inside = 1; }";
        let (tokens, m) = map(src);
        assert_eq!(m.enclosing_fn(idx_of(&tokens, "inside")), Some("real"));
        assert!(!m.in_type_def(idx_of(&tokens, "inside")));
    }
}
