//! Rendering the paper's tables and figures from sweep results.

use crate::scenario::{BufferDepth, QueueKind, ScenarioConfig, Transport};
use crate::sweep::SweepResults;
use ecn_core::ProtectionMode;
use mrsim::{JobSpec, TerasortJob};
use netpacket::PacketKind;
use netsim::{ClusterSpec, Network, Simulation};
use serde::{Deserialize, Serialize};
use simevent::SimDuration;
use tcpstack::TcpConfig;

/// One normalised value at one target delay for one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureCell {
    /// Target delay (x-axis), microseconds.
    pub delay_us: u64,
    /// Normalised metric value.
    pub value: f64,
}

/// One line in a figure panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Legend label, e.g. "dctcp red[ack+syn]".
    pub label: String,
    /// Values across the delay sweep.
    pub cells: Vec<FigureCell>,
}

/// One panel (subfigure) — e.g. Fig. 2a.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePanel {
    /// Panel id, e.g. "Fig2a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Buffer depth of the panel.
    pub depth: BufferDepth,
    /// What 1.0 means (the normalisation baseline).
    pub baseline_desc: String,
    /// The dashed reference line of the paper's deep panels, if any.
    pub reference: Option<(String, f64)>,
    /// Data series.
    pub series: Vec<FigureSeries>,
}

fn build_panel<F>(
    res: &SweepResults,
    id: &str,
    title: &str,
    depth: BufferDepth,
    baseline_desc: &str,
    reference: Option<(String, f64)>,
    metric: F,
) -> FigurePanel
where
    F: Fn(&crate::scenario::RunMetrics) -> f64,
{
    let mut series = Vec::new();
    for &transport in &res.grid.transports {
        for &queue in &res.grid.queues {
            let mut cells = Vec::new();
            for &delay_us in &res.grid.target_delays_us {
                if let Some(p) = res.point(transport, queue, depth, delay_us) {
                    cells.push(FigureCell {
                        delay_us,
                        value: metric(&p.metrics),
                    });
                }
            }
            if !cells.is_empty() {
                series.push(FigureSeries {
                    label: format!("{} {}", transport.label(), queue.label()),
                    cells,
                });
            }
        }
    }
    FigurePanel {
        id: id.into(),
        title: title.into(),
        depth,
        baseline_desc: baseline_desc.into(),
        reference,
        series,
    }
}

/// **Figure 2 — Hadoop Runtime (RED target-delay sweep).**
/// Normalised to DropTail with shallow buffers (lower is better). The deep
/// panel carries a dashed line at DropTail-deep's (better) runtime.
pub fn fig2(res: &SweepResults) -> [FigurePanel; 2] {
    let base = res.baseline_shallow.runtime_s;
    let a = build_panel(
        res,
        "Fig2a",
        "Hadoop Runtime - RED (shallow buffers)",
        BufferDepth::Shallow,
        "runtime / runtime(DropTail shallow)",
        None,
        |m| m.runtime_s / base,
    );
    let b = build_panel(
        res,
        "Fig2b",
        "Hadoop Runtime - RED (deep buffers)",
        BufferDepth::Deep,
        "runtime / runtime(DropTail shallow)",
        Some(("droptail deep".into(), res.baseline_deep.runtime_s / base)),
        |m| m.runtime_s / base,
    );
    [a, b]
}

/// **Figure 3 — Cluster Throughput (per node).**
/// Normalised to DropTail shallow (higher is better); dashed line on the
/// deep panel marks DropTail-deep.
pub fn fig3(res: &SweepResults) -> [FigurePanel; 2] {
    let base = res.baseline_shallow.throughput_per_node_bps;
    let a = build_panel(
        res,
        "Fig3a",
        "Cluster Throughput - RED (shallow buffers)",
        BufferDepth::Shallow,
        "throughput / throughput(DropTail shallow)",
        None,
        move |m| m.throughput_per_node_bps / base,
    );
    let b = build_panel(
        res,
        "Fig3b",
        "Cluster Throughput - RED (deep buffers)",
        BufferDepth::Deep,
        "throughput / throughput(DropTail shallow)",
        Some((
            "droptail deep".into(),
            res.baseline_deep.throughput_per_node_bps / base,
        )),
        move |m| m.throughput_per_node_bps / base,
    );
    [a, b]
}

/// **Figure 4 — Network Latency.**
/// Normalised to DropTail *of the same buffer depth* (lower is better); the
/// deep panel's dashed line marks the (much lower) DropTail-shallow latency.
pub fn fig4(res: &SweepResults) -> [FigurePanel; 2] {
    let base_shallow = res.baseline_shallow.mean_latency_s;
    let base_deep = res.baseline_deep.mean_latency_s;
    let a = build_panel(
        res,
        "Fig4a",
        "Network Latency - RED (shallow buffers)",
        BufferDepth::Shallow,
        "latency / latency(DropTail shallow)",
        None,
        move |m| m.mean_latency_s / base_shallow,
    );
    let b = build_panel(
        res,
        "Fig4b",
        "Network Latency - RED (deep buffers)",
        BufferDepth::Deep,
        "latency / latency(DropTail deep)",
        Some(("droptail shallow".into(), base_shallow / base_deep)),
        move |m| m.mean_latency_s / base_deep,
    );
    [a, b]
}

// --------------------------------------------------------------------------
// Figure 1: queue snapshot
// --------------------------------------------------------------------------

/// The Fig. 1 reproduction: a congested switch egress queue under a Hadoop
/// shuffle with a stock ECN AQM — dominated by ECT data held at the marking
/// threshold, with non-ECT ACKs disproportionately early-dropped.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Report {
    /// Mean queue occupancy (packets) while busy.
    pub mean_occupancy: f64,
    /// Peak occupancy (packets).
    pub peak_occupancy: u64,
    /// Mean fraction of resident packets that are ECT data.
    pub data_fraction: f64,
    /// Early-dropped pure ACKs at switch queues.
    pub acks_early_dropped: u64,
    /// Early-dropped SYN/SYN-ACK.
    pub handshake_early_dropped: u64,
    /// Early-dropped data (must be 0: data is ECT and gets marked).
    pub data_early_dropped: u64,
    /// CE marks applied to data.
    pub data_marked: u64,
    /// Share of early drops that hit pure ACKs.
    pub ack_share_of_early_drops: f64,
}

/// Run the Fig. 1 scenario: shallow buffers, stock RED (Default protection),
/// TCP-ECN shuffle; trace a ToR egress port.
pub fn fig1(cfg: &ScenarioConfig, target_delay: SimDuration) -> Fig1Report {
    fig1_full(cfg, target_delay).0
}

/// The Fig. 1 queue-occupancy time series as CSV (for external plotting).
pub fn fig1_trace_csv(cfg: &ScenarioConfig, target_delay: SimDuration) -> Result<String, String> {
    Ok(fig1_full(cfg, target_delay).1)
}

/// Run the Fig. 1 scenario once, returning both the summary report and the
/// CSV-rendered occupancy trace.
pub fn fig1_full(cfg: &ScenarioConfig, target_delay: SimDuration) -> (Fig1Report, String) {
    let spec = ClusterSpec {
        racks: cfg.racks,
        hosts_per_rack: cfg.hosts_per_rack,
        host_link: cfg.host_link,
        uplink: cfg.uplink,
        switch_qdisc: cfg.qdisc(
            QueueKind::Red(ProtectionMode::Default),
            BufferDepth::Shallow,
            target_delay,
        ),
        host_buffer_packets: 4 * cfg.deep_packets,
        seed: cfg.seed,
    };
    let n = spec.total_hosts();
    let mut net = Network::new(spec);
    // Trace ToR 0's egress port toward host 0 — an all-to-all hot spot.
    net.enable_queue_trace(0, 0, SimDuration::from_micros(50), 2_000_000);
    let job = JobSpec {
        input_bytes_per_node: cfg.input_bytes_per_node,
        map_waves: cfg.map_waves,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp: TcpConfig {
            sack: false,
            ..TcpConfig::with_ecn(Transport::TcpEcn.ecn_mode())
        },
        parallel_copies: 5,
        shuffle_jitter: cfg.shuffle_jitter,
        seed: cfg.seed ^ 0x5EED,
    };
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = cfg.time_limit;
    let report = sim.run();
    assert!(report.app_done, "Fig1 scenario must complete");

    let trace = sim.net.queue_trace().expect("trace enabled");
    let csv = trace.to_csv();
    let port = sim.net.port_stats().total;
    let early_total = port.dropped_early.total().max(1);
    let report = Fig1Report {
        mean_occupancy: trace.mean_nonempty_packets(),
        peak_occupancy: trace.peak_packets(),
        data_fraction: trace.mean_data_fraction(),
        acks_early_dropped: port.dropped_early.get(PacketKind::PureAck),
        handshake_early_dropped: port.dropped_early.get(PacketKind::Syn)
            + port.dropped_early.get(PacketKind::SynAck),
        data_early_dropped: port.dropped_early.get(PacketKind::Data),
        data_marked: port.marked.get(PacketKind::Data),
        ack_share_of_early_drops: port.dropped_early.get(PacketKind::PureAck) as f64
            / early_total as f64,
    };
    (report, csv)
}

// --------------------------------------------------------------------------
// Tables I & II
// --------------------------------------------------------------------------

/// Render the paper's Table I (ECN codepoints on the TCP header).
pub fn table1() -> String {
    use netpacket::TcpFlags;
    let mut s = String::from("Table I — ECN codepoints on TCP header\n");
    s.push_str("codepoint  name  description\n");
    s.push_str(&format!(
        "{:#04b}         ECE   ECN-Echo flag\n",
        (TcpFlags::ECE.bits() >> 6) & 0b11
    ));
    s.push_str(&format!(
        "{:#04b}         CWR   Congestion Window Reduced\n",
        (TcpFlags::CWR.bits() >> 6) & 0b11
    ));
    s
}

/// Render the paper's Table II (ECN codepoints on the IP header).
pub fn table2() -> String {
    use netpacket::EcnCodepoint;
    let mut s = String::from("Table II — ECN codepoints on IP header\n");
    s.push_str("codepoint  name      description\n");
    for (cp, desc) in [
        (EcnCodepoint::NotEct, "Non ECN-Capable Transport"),
        (EcnCodepoint::Ect0, "ECN Capable Transport"),
        (EcnCodepoint::Ect1, "ECN Capable Transport"),
        (EcnCodepoint::Ce, "Congestion Encountered"),
    ] {
        s.push_str(&format!(
            "{:02b}         {:<9} {}\n",
            cp.bits(),
            cp.to_string(),
            desc
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert!(t1.contains("ECE") && t1.contains("CWR"));
        let t2 = table2();
        assert!(t2.contains("Non-ECT"));
        assert!(t2.contains("10"));
        assert!(t2.contains("Congestion Encountered"));
    }

    #[test]
    fn fig1_tiny_shows_the_pathology() {
        let mut cfg = ScenarioConfig::tiny();
        cfg.input_bytes_per_node = 2_000_000;
        let rep = fig1(&cfg, SimDuration::from_micros(200));
        assert!(
            rep.data_fraction > 0.5,
            "queue should be data-dominated: {rep:?}"
        );
        assert_eq!(rep.data_early_dropped, 0, "ECT data is marked, not dropped");
        assert!(rep.data_marked > 0);
        assert!(
            rep.acks_early_dropped > 0,
            "stock RED must early-drop ACKs: {rep:?}"
        );
        assert!(
            rep.ack_share_of_early_drops > 0.5,
            "ACKs dominate early drops: {rep:?}"
        );
    }
}
