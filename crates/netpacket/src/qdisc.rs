//! The queue-discipline abstraction implemented by `ecn-core`'s AQMs and
//! consumed by `netsim` switch ports.

use crate::{Packet, PacketKind, PacketPool, PacketRef};
use serde::{Deserialize, Serialize};
use simevent::SimTime;
use simtrace::{EventKind, TraceEvent, TraceHandle};

/// Build a packet-scoped [`TraceEvent`]: stamps the packet's id, flow and
/// classified kind so every discipline serialises decisions identically.
pub fn packet_event(kind: EventKind, at: SimTime, queue: u32, packet: &Packet) -> TraceEvent {
    let mut ev = TraceEvent::new(kind, at);
    ev.queue = queue;
    ev.flow = packet.flow.0;
    ev.packet = packet.id.0;
    ev.pkind = PacketKind::of(packet).index() as u8;
    ev
}

/// What happened to a packet offered to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnqueueOutcome {
    /// Accepted unmodified.
    Enqueued,
    /// Accepted, and its IP ECN field was set to CE (congestion signalled).
    EnqueuedMarked,
    /// Rejected by the AQM's early-drop policy (queue was *not* full).
    DroppedEarly,
    /// Rejected because the buffer was physically full (tail drop).
    DroppedFull,
}

impl EnqueueOutcome {
    /// True when the packet made it into the queue.
    pub fn accepted(self) -> bool {
        matches!(
            self,
            EnqueueOutcome::Enqueued | EnqueueOutcome::EnqueuedMarked
        )
    }
}

/// Per-kind counters kept by every queue: one slot per [`PacketKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCounters(pub [u64; 6]);

impl KindCounters {
    /// Increment the counter for `kind`.
    pub fn bump(&mut self, kind: PacketKind) {
        self.0[kind.index()] += 1;
    }
    /// Read the counter for `kind`.
    pub fn get(&self, kind: PacketKind) -> u64 {
        self.0[kind.index()]
    }
    /// Sum over all kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Statistics every queue discipline maintains; used for the paper's Fig. 1
/// analysis (who gets dropped) and for the conservation property tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Packets accepted (marked or not), by kind.
    pub enqueued: KindCounters,
    /// Packets accepted *and* CE-marked, by kind.
    pub marked: KindCounters,
    /// Packets early-dropped by AQM policy, by kind.
    pub dropped_early: KindCounters,
    /// Packets tail-dropped on a full buffer, by kind.
    pub dropped_full: KindCounters,
    /// Packets dequeued, by kind.
    pub dequeued: KindCounters,
    /// Total bytes accepted.
    pub bytes_enqueued: u64,
    /// Total bytes dequeued.
    pub bytes_dequeued: u64,
    /// High-water mark of queue occupancy in packets.
    pub max_len_packets: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_len_bytes: u64,
}

impl QueueStats {
    /// All drops (early + full), all kinds.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_early.total() + self.dropped_full.total()
    }

    /// Record an accepted packet.
    pub fn on_enqueue(
        &mut self,
        kind: PacketKind,
        bytes: u32,
        marked: bool,
        len_pkts: u64,
        len_bytes: u64,
    ) {
        self.enqueued.bump(kind);
        if marked {
            self.marked.bump(kind);
        }
        self.bytes_enqueued += bytes as u64;
        self.max_len_packets = self.max_len_packets.max(len_pkts);
        self.max_len_bytes = self.max_len_bytes.max(len_bytes);
    }

    /// Record a dequeued packet.
    pub fn on_dequeue(&mut self, kind: PacketKind, bytes: u32) {
        self.dequeued.bump(kind);
        self.bytes_dequeued += bytes as u64;
    }
}

/// Debug-build packet/byte conservation checker.
///
/// Counts admissions, deliveries and post-admission drops *independently* of
/// [`QueueStats`], so a discipline's bookkeeping is cross-checked against a
/// second ledger on every operation. [`ConservationCheck::verify`] asserts
/// the conservation identity
///
/// ```text
/// admitted == delivered + dropped_resident + resident
/// ```
///
/// in both packets and bytes, and that the independent ledger agrees with the
/// discipline's own `QueueStats`. In release builds the struct is zero-sized
/// and every method is a no-op, so the hot path pays nothing.
#[derive(Debug, Default, Clone)]
pub struct ConservationCheck {
    #[cfg(debug_assertions)]
    inner: ConservationLedger,
}

#[cfg(debug_assertions)]
#[derive(Debug, Default, Clone)]
struct ConservationLedger {
    admitted_pkts: u64,
    admitted_bytes: u64,
    delivered_pkts: u64,
    delivered_bytes: u64,
    /// Packets admitted earlier and then dropped at dequeue time (CoDel's
    /// head-drop control law); zero for enqueue-time droppers.
    dropped_resident_pkts: u64,
    dropped_resident_bytes: u64,
}

impl ConservationCheck {
    /// Record a packet admitted into the queue.
    #[inline]
    pub fn on_admit(&mut self, bytes: u32) {
        let _ = bytes;
        #[cfg(debug_assertions)]
        {
            self.inner.admitted_pkts += 1;
            self.inner.admitted_bytes += bytes as u64;
        }
    }

    /// Record a packet handed to the line at dequeue.
    #[inline]
    pub fn on_deliver(&mut self, bytes: u32) {
        let _ = bytes;
        #[cfg(debug_assertions)]
        {
            self.inner.delivered_pkts += 1;
            self.inner.delivered_bytes += bytes as u64;
        }
    }

    /// Record an *admitted* packet dropped at dequeue time (head drop).
    #[inline]
    pub fn on_drop_resident(&mut self, bytes: u32) {
        let _ = bytes;
        #[cfg(debug_assertions)]
        {
            self.inner.dropped_resident_pkts += 1;
            self.inner.dropped_resident_bytes += bytes as u64;
        }
    }

    /// Assert the conservation identity against the queue's current occupancy
    /// and its [`QueueStats`]. No-op in release builds.
    #[inline]
    pub fn verify(&self, name: &str, stats: &QueueStats, len_pkts: u64, len_bytes: u64) {
        let _ = (name, stats, len_pkts, len_bytes);
        #[cfg(debug_assertions)]
        {
            let l = &self.inner;
            assert_eq!(
                l.admitted_pkts,
                l.delivered_pkts + l.dropped_resident_pkts + len_pkts,
                "{name}: packet conservation violated \
                 (admitted != delivered + head-dropped + resident)"
            );
            assert_eq!(
                l.admitted_bytes,
                l.delivered_bytes + l.dropped_resident_bytes + len_bytes,
                "{name}: byte conservation violated"
            );
            // The independent ledger must agree with the discipline's own
            // statistics — catches a stats update forgotten on any path.
            assert_eq!(
                l.admitted_pkts,
                stats.enqueued.total(),
                "{name}: stats.enqueued disagrees with conservation ledger"
            );
            assert_eq!(
                l.admitted_bytes, stats.bytes_enqueued,
                "{name}: stats.bytes_enqueued disagrees with conservation ledger"
            );
            assert_eq!(
                l.delivered_pkts,
                stats.dequeued.total(),
                "{name}: stats.dequeued disagrees with conservation ledger"
            );
            assert!(
                l.dropped_resident_pkts <= stats.dropped_early.total(),
                "{name}: head drops not reflected in stats.dropped_early"
            );
        }
    }
}

/// A switch egress queue discipline.
///
/// Implementations decide, per packet, between accepting (optionally CE
/// marking) and dropping (early or overflow). The port transmitter calls
/// [`QueueDiscipline::dequeue`] when the line goes idle.
///
/// Determinism contract: given the same sequence of calls (with the same
/// packets and times) and the same internal RNG seed, an implementation must
/// make identical decisions.
pub trait QueueDiscipline: std::fmt::Debug {
    /// Offer a packet. On acceptance the queue takes ownership; on drop the
    /// packet is consumed (the caller sees the outcome).
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome;

    /// Remove the head-of-line packet, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Pool-handle variant of [`enqueue`](Self::enqueue): the packet arrives
    /// as a [`PacketRef`] into `pool` and the handle is consumed either way
    /// (the discipline owns the packet on acceptance, drops it on rejection).
    ///
    /// The default bridges to the by-value API, so every discipline
    /// participates in the arena path unchanged; decisions, statistics and
    /// tracing are byte-identical to the by-value path because they *are*
    /// the by-value path.
    fn enqueue_ref(&mut self, r: PacketRef, pool: &mut PacketPool, now: SimTime) -> EnqueueOutcome {
        let packet = pool.take(r);
        self.enqueue(packet, now)
    }

    /// Pool-handle variant of [`dequeue`](Self::dequeue): the departing
    /// packet is parked back in `pool` and its handle returned, ready to ride
    /// a scheduler event to the next hop.
    fn dequeue_ref(&mut self, pool: &mut PacketPool, now: SimTime) -> Option<PacketRef> {
        self.dequeue(now).map(|p| pool.insert(p))
    }

    /// Current occupancy in packets.
    fn len_packets(&self) -> u64;

    /// Current occupancy in bytes.
    fn len_bytes(&self) -> u64;

    /// Capacity in packets (the buffer depth the paper's shallow/deep axis
    /// varies).
    fn capacity_packets(&self) -> u64;

    /// Cumulative statistics.
    fn stats(&self) -> &QueueStats;

    /// Human-readable discipline name for reports (`DropTail`, `RED[ece]`, ...).
    fn name(&self) -> String;

    /// Resident packets by kind (indexed by [`PacketKind::index`]), for
    /// queue-composition snapshots (the paper's Fig. 1). Disciplines that
    /// cannot enumerate residents may return zeros.
    fn snapshot_kinds(&self) -> [u64; 6] {
        [0; 6]
    }

    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }

    /// Debug-build invariant hook: assert packet/byte conservation
    /// (`admitted == delivered + head-dropped + resident`) against the
    /// discipline's internal ledger. Called by `netsim` after every
    /// enqueue/dequeue in debug builds; the default is a no-op so
    /// uninstrumented disciplines remain valid implementations.
    fn debug_verify_conservation(&self) {}

    /// Attach a trace handle; `queue` is the id this discipline stamps into
    /// its events (from [`TraceHandle::register_queue`]). Tracing must never
    /// change decisions — only record them. The default ignores the handle so
    /// uninstrumented disciplines remain valid implementations.
    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        let _ = (trace, queue);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accepted() {
        assert!(EnqueueOutcome::Enqueued.accepted());
        assert!(EnqueueOutcome::EnqueuedMarked.accepted());
        assert!(!EnqueueOutcome::DroppedEarly.accepted());
        assert!(!EnqueueOutcome::DroppedFull.accepted());
    }

    #[test]
    fn kind_counters() {
        let mut c = KindCounters::default();
        c.bump(PacketKind::PureAck);
        c.bump(PacketKind::PureAck);
        c.bump(PacketKind::Data);
        assert_eq!(c.get(PacketKind::PureAck), 2);
        assert_eq!(c.get(PacketKind::Data), 1);
        assert_eq!(c.get(PacketKind::Syn), 0);
        assert_eq!(c.total(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn conservation_check_catches_lost_packet() {
        // A queue that admits two packets, delivers one, and claims to be
        // empty has lost a packet; verify must panic in debug builds.
        let mut c = ConservationCheck::default();
        let mut s = QueueStats::default();
        c.on_admit(100);
        s.on_enqueue(PacketKind::Data, 100, false, 1, 100);
        c.on_admit(100);
        s.on_enqueue(PacketKind::Data, 100, false, 2, 200);
        c.on_deliver(100);
        s.on_dequeue(PacketKind::Data, 100);
        // Consistent state: one resident packet.
        c.verify("test", &s, 1, 100);
        let r = std::panic::catch_unwind(|| c.verify("test", &s, 0, 0));
        assert!(r.is_err(), "claiming an empty queue must trip the check");
    }

    #[test]
    fn trace_kind_names_track_packet_kind_indices() {
        // simtrace cannot depend on this crate, so it keeps its own copy of
        // the kind-name table; this pins the two to each other.
        for kind in PacketKind::ALL {
            assert_eq!(
                simtrace::KIND_NAMES[kind.index()],
                kind.to_string(),
                "KIND_NAMES[{}] out of sync with PacketKind ordering",
                kind.index()
            );
        }
    }

    #[test]
    fn packet_event_stamps_packet_identity() {
        let p = Packet {
            id: crate::PacketId(42),
            flow: crate::FlowId(7),
            src: crate::NodeId(0),
            dst: crate::NodeId(1),
            seq: 0,
            ack: 0,
            payload: 0,
            flags: crate::TcpFlags::ACK,
            ecn: crate::EcnCodepoint::NotEct,
            sack: crate::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        };
        let ev = packet_event(EventKind::DroppedEarly, SimTime::from_nanos(5), 3, &p);
        assert_eq!(ev.queue, 3);
        assert_eq!(ev.flow, 7);
        assert_eq!(ev.packet, 42);
        assert_eq!(ev.pkind, PacketKind::PureAck.index() as u8);
        assert_eq!(ev.at, SimTime::from_nanos(5));
    }

    #[test]
    fn stats_accounting() {
        let mut s = QueueStats::default();
        s.on_enqueue(PacketKind::Data, 1500, true, 3, 4500);
        s.on_enqueue(PacketKind::PureAck, 150, false, 4, 4650);
        s.on_dequeue(PacketKind::Data, 1500);
        assert_eq!(s.enqueued.total(), 2);
        assert_eq!(s.marked.total(), 1);
        assert_eq!(s.marked.get(PacketKind::Data), 1);
        assert_eq!(s.bytes_enqueued, 1650);
        assert_eq!(s.bytes_dequeued, 1500);
        assert_eq!(s.max_len_packets, 4);
        assert_eq!(s.max_len_bytes, 4650);
        assert_eq!(s.dropped_total(), 0);
    }
}
