//! Controller × queue matrix: every `simcc` congestion controller against
//! the protection-relevant queue disciplines, plus the controller-dimension
//! claim gates (CUBIC pathology/rescue, BBR rescue, Prague classic-ECN-AQM
//! fallback on the RED mimic and silence on true simple marking).
//!
//! Exits nonzero if any controller claim gate fails, so CI catches a
//! regression in the controllers or a mistuned fallback detector.
//!
//! The matrix pins its own scenario (the tiny shallow-buffer incast point);
//! only `--seed` changes what runs — see `experiments::cc_matrix`.
//!
//! Usage: `cc_matrix [--seed N]`

use experiments::cc_matrix::{cc_claims, check_cc_claims, render_cc_matrix, run_cc_matrix};
use experiments::report::write_json;
use std::path::Path;

fn main() {
    let cfg = experiments::cli::cli_args().scenario();
    eprintln!("[cc_matrix] running the controller x queue matrix...");
    let res = run_cc_matrix(&cfg);
    println!("{}", render_cc_matrix(&res));
    let _ = write_json(&res, Path::new("results/cc_matrix.json"));

    let c = cc_claims(&res);
    let _ = write_json(&c, Path::new("results/cc_claims.json"));
    println!(
        "prague fallbacks: red-mimic={} simple-marking={} dualq={}",
        c.prague_fallbacks_red_mimic, c.prague_fallbacks_simple_marking, c.prague_fallbacks_dualq
    );
    let failures = check_cc_claims(&c);
    if !failures.is_empty() {
        eprintln!(
            "[cc_matrix] {} controller claim gate(s) FAILED:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("all controller claim gates passed");
}
