//! Plain FIFO tail-drop — the paper's normalisation baseline.

use crate::fifo::Fifo;
use netpacket::{
    packet_event, ConservationCheck, EnqueueOutcome, Packet, PacketKind, QueueDiscipline,
    QueueStats,
};
use simevent::SimTime;
use simtrace::{EventKind, TraceHandle, NO_QUEUE};

/// A DropTail queue: accept until the packet buffer is full, then drop.
///
/// Capacity is deliberately packet-denominated: DropTail has no byte mode
/// (unlike [`crate::Red`]), matching the paper's fixed-depth switch buffers.
///
/// Every result in the paper's §IV is normalised to this discipline (with
/// shallow buffers for runtime/throughput, and with matching buffer depth for
/// latency).
#[derive(Debug)]
pub struct DropTail {
    fifo: Fifo,
    capacity_packets: u64,
    stats: QueueStats,
    conserve: ConservationCheck,
    trace: TraceHandle,
    trace_q: u32,
}

impl DropTail {
    /// A DropTail queue holding at most `capacity_packets` packets.
    pub fn new(capacity_packets: u64) -> Self {
        assert!(capacity_packets > 0, "capacity must be positive");
        DropTail {
            fifo: Fifo::new(),
            capacity_packets,
            stats: QueueStats::default(),
            conserve: ConservationCheck::default(),
            trace: TraceHandle::null(),
            trace_q: NO_QUEUE,
        }
    }

    /// Iterate resident packets head-to-tail (queue snapshots, Fig. 1).
    pub fn resident(&self) -> impl Iterator<Item = &Packet> {
        self.fifo.iter()
    }
}

impl QueueDiscipline for DropTail {
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome {
        let kind = PacketKind::of(&packet);
        if self.fifo.len() >= self.capacity_packets {
            self.stats.dropped_full.bump(kind);
            if self.trace.is_enabled() {
                self.trace.emit(packet_event(
                    EventKind::DroppedFull,
                    now,
                    self.trace_q,
                    &packet,
                ));
            }
            return EnqueueOutcome::DroppedFull;
        }
        if self.trace.is_enabled() {
            self.trace.emit(packet_event(
                EventKind::Enqueued,
                now,
                self.trace_q,
                &packet,
            ));
        }
        let bytes = packet.wire_bytes();
        self.fifo.push(packet);
        self.conserve.on_admit(bytes);
        self.stats
            .on_enqueue(kind, bytes, false, self.fifo.len(), self.fifo.bytes());
        self.debug_verify_conservation();
        EnqueueOutcome::Enqueued
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        let p = self.fifo.pop()?;
        self.conserve.on_deliver(p.wire_bytes());
        self.stats.on_dequeue(PacketKind::of(&p), p.wire_bytes());
        if self.trace.is_enabled() {
            self.trace
                .emit(packet_event(EventKind::Dequeued, now, self.trace_q, &p));
        }
        self.debug_verify_conservation();
        Some(p)
    }

    fn len_packets(&self) -> u64 {
        self.fifo.len()
    }

    fn len_bytes(&self) -> u64 {
        self.fifo.bytes()
    }

    fn capacity_packets(&self) -> u64 {
        self.capacity_packets
    }

    fn stats(&self) -> &QueueStats {
        &self.stats
    }

    fn snapshot_kinds(&self) -> [u64; 6] {
        let mut kinds = [0u64; 6];
        for p in self.fifo.iter() {
            kinds[netpacket::PacketKind::of(p).index()] += 1;
        }
        kinds
    }

    fn name(&self) -> String {
        format!("DropTail(cap={})", self.capacity_packets)
    }

    fn debug_verify_conservation(&self) {
        self.conserve
            .verify("DropTail", &self.stats, self.fifo.len(), self.fifo.bytes());
    }

    fn set_trace(&mut self, trace: TraceHandle, queue: u32) {
        self.trace = trace;
        self.trace_q = queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpacket::{EcnCodepoint, FlowId, NodeId, PacketId, TcpFlags};

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            src: NodeId(0),
            dst: NodeId(1),
            seq: 0,
            ack: 0,
            payload: 1460,
            flags: TcpFlags::ACK,
            ecn: EcnCodepoint::Ect0,
            sack: netpacket::SackBlocks::EMPTY,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn accepts_until_full_then_tail_drops() {
        let mut q = DropTail::new(3);
        for i in 0..3 {
            assert_eq!(q.enqueue(pkt(i), SimTime::ZERO), EnqueueOutcome::Enqueued);
        }
        assert_eq!(
            q.enqueue(pkt(3), SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
        assert_eq!(q.len_packets(), 3);
        assert_eq!(q.stats().dropped_full.total(), 1);
        assert_eq!(
            q.stats().dropped_early.total(),
            0,
            "DropTail never early-drops"
        );
    }

    #[test]
    fn never_marks() {
        let mut q = DropTail::new(10);
        for i in 0..10 {
            let out = q.enqueue(pkt(i), SimTime::ZERO);
            assert_eq!(out, EnqueueOutcome::Enqueued);
        }
        assert_eq!(q.stats().marked.total(), 0);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = DropTail::new(5);
        for i in 0..5 {
            q.enqueue(pkt(i), SimTime::ZERO);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(SimTime::ZERO).unwrap().id, PacketId(i));
        }
        assert!(q.dequeue(SimTime::ZERO).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn conservation() {
        let mut q = DropTail::new(4);
        for i in 0..10 {
            q.enqueue(pkt(i), SimTime::ZERO);
        }
        while q.dequeue(SimTime::ZERO).is_some() {}
        let s = q.stats();
        assert_eq!(s.enqueued.total(), s.dequeued.total());
        assert_eq!(s.enqueued.total() + s.dropped_total(), 10);
        assert_eq!(s.bytes_enqueued, s.bytes_dequeued);
    }

    #[test]
    fn high_water_mark() {
        let mut q = DropTail::new(10);
        for i in 0..7 {
            q.enqueue(pkt(i), SimTime::ZERO);
        }
        q.dequeue(SimTime::ZERO);
        assert_eq!(q.stats().max_len_packets, 7);
        assert_eq!(q.len_packets(), 6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = DropTail::new(0);
    }

    #[test]
    fn pool_bridge_consumes_handles_and_preserves_decisions() {
        let mut pool = netpacket::PacketPool::new();
        let mut q = DropTail::new(2);
        let a = pool.insert(pkt(1));
        let b = pool.insert(pkt(2));
        let c = pool.insert(pkt(3));
        assert_eq!(
            q.enqueue_ref(a, &mut pool, SimTime::ZERO),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            q.enqueue_ref(b, &mut pool, SimTime::ZERO),
            EnqueueOutcome::Enqueued
        );
        assert_eq!(
            q.enqueue_ref(c, &mut pool, SimTime::ZERO),
            EnqueueOutcome::DroppedFull
        );
        assert!(pool.is_empty(), "handles consumed on accept and drop alike");
        let out = q.dequeue_ref(&mut pool, SimTime::ZERO).unwrap();
        assert_eq!(pool.get(out).id, PacketId(1));
        pool.take(out);
        assert_eq!(q.stats().enqueued.total(), 2);
        assert_eq!(q.stats().dequeued.total(), 1);
    }
}
