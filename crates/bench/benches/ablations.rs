//! Ablations of the design choices DESIGN.md calls out, each a nano-scale
//! Terasort run. The printed metrics are the ablation's result; Criterion
//! times the simulations.
//!
//! 1. **Per-packet vs per-byte RED thresholds** — the paper stresses switches
//!    count packets, which is what makes 150 B ACKs as costly as 1.5 kB data.
//! 2. **Instantaneous vs EWMA queue estimate** for the marking decision.
//! 3. **Delayed ACKs (1 vs 2)** — halves the ACK volume in the queues.
//! 4. **Protection scope: ECE-bit vs ACK+SYN** — the two proposals.
//! 5. **SACK on/off** — the paper's NS-2 FullTcp substrate predates SACK;
//!    modern stacks have it. It changes loss-recovery dynamics and therefore
//!    where overflow losses land.

use bench::nano_config;
use criterion::{criterion_group, criterion_main, Criterion};
use ecn_core::{ProtectionMode, QdiscSpec, RedConfig};
use experiments::scenario::{BufferDepth, QueueKind, Transport};
use mrsim::{JobSpec, TerasortJob};
use netpacket::PacketKind;
use netsim::{ClusterSpec, Network, Simulation};
use simevent::SimDuration;
use tcpstack::TcpConfig;

/// Run a nano Terasort over an explicit qdisc spec and TCP config; return
/// (runtime_s, ack_early_drops).
fn run_custom(qdisc: QdiscSpec, tcp: TcpConfig) -> (f64, u64) {
    let cfg = nano_config();
    let spec = ClusterSpec {
        racks: cfg.racks,
        hosts_per_rack: cfg.hosts_per_rack,
        host_link: cfg.host_link,
        uplink: cfg.uplink,
        switch_qdisc: qdisc,
        host_buffer_packets: 4 * cfg.deep_packets,
        seed: cfg.seed,
    };
    let n = spec.total_hosts();
    let job = JobSpec {
        input_bytes_per_node: cfg.input_bytes_per_node,
        map_waves: cfg.map_waves,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp,
        parallel_copies: 5,
        shuffle_jitter: cfg.shuffle_jitter,
        seed: cfg.seed ^ 0x5EED,
    };
    let net = Network::new(spec);
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = cfg.time_limit;
    let report = sim.run();
    assert!(report.app_done);
    let runtime = sim.app.result().runtime.as_secs_f64();
    let acks = sim
        .net
        .port_stats()
        .total
        .dropped_early
        .get(PacketKind::PureAck);
    (runtime, acks)
}

fn red_spec(mutator: impl Fn(&mut RedConfig)) -> QdiscSpec {
    let mut rc = RedConfig::from_target_delay(
        SimDuration::from_micros(200),
        1_000_000_000,
        1526,
        100,
        ProtectionMode::Default,
    );
    mutator(&mut rc);
    QdiscSpec::Red(rc)
}

fn ecn_tcp() -> TcpConfig {
    TcpConfig {
        recv_wnd: 128 << 10,
        sack: false,
        ..TcpConfig::with_ecn(tcpstack::EcnMode::Ecn)
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // 1. Per-packet vs per-byte thresholds.
    for (name, byte_mode) in [
        ("thresholds_per_packet", false),
        ("thresholds_per_byte", true),
    ] {
        let spec = red_spec(|rc| rc.byte_mode = byte_mode);
        let (rt, acks) = run_custom(spec.clone(), ecn_tcp());
        println!("[ablation] {name}: runtime {rt:.4}s, ACK early-drops {acks}");
        g.bench_function(name, |b| b.iter(|| run_custom(spec.clone(), ecn_tcp())));
    }

    // 2. Instantaneous vs EWMA queue estimate.
    for (name, w) in [
        ("queue_estimate_ewma", 0.25),
        ("queue_estimate_instantaneous", 1.0),
    ] {
        let spec = red_spec(|rc| rc.ewma_weight = w);
        let (rt, acks) = run_custom(spec.clone(), ecn_tcp());
        println!("[ablation] {name}: runtime {rt:.4}s, ACK early-drops {acks}");
        g.bench_function(name, |b| b.iter(|| run_custom(spec.clone(), ecn_tcp())));
    }

    // 3. Delayed-ACK factor.
    for (name, m) in [("delack_every_segment", 1u32), ("delack_every_2nd", 2u32)] {
        let spec = red_spec(|_| {});
        let tcp = TcpConfig {
            delayed_ack: m,
            ..ecn_tcp()
        };
        let (rt, acks) = run_custom(spec.clone(), tcp.clone());
        println!("[ablation] {name}: runtime {rt:.4}s, ACK early-drops {acks}");
        g.bench_function(name, |b| b.iter(|| run_custom(spec.clone(), tcp.clone())));
    }

    // 5. SACK vs NewReno-only recovery (stock Default-mode RED).
    for (name, sack) in [("recovery_newreno_no_sack", false), ("recovery_sack", true)] {
        let spec = red_spec(|_| {});
        let tcp = TcpConfig { sack, ..ecn_tcp() };
        let (rt, acks) = run_custom(spec.clone(), tcp.clone());
        println!("[ablation] {name}: runtime {rt:.4}s, ACK early-drops {acks}");
        g.bench_function(name, |b| b.iter(|| run_custom(spec.clone(), tcp.clone())));
    }

    // 4. Protection scope.
    for mode in ProtectionMode::ALL {
        let name = format!("protection_{}", mode.label());
        let spec = red_spec(|rc| rc.protection = mode);
        let (rt, acks) = run_custom(spec.clone(), ecn_tcp());
        println!("[ablation] {name}: runtime {rt:.4}s, ACK early-drops {acks}");
        g.bench_function(&name, |b| b.iter(|| run_custom(spec.clone(), ecn_tcp())));
    }

    g.finish();

    // Keep the unused-import lints honest: these types are part of the
    // ablation surface even when a particular build elides a case.
    let _ = (Transport::Tcp, QueueKind::DropTail, BufferDepth::Shallow);
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
