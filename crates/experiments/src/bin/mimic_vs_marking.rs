//! The paper's central contrast (§II): *mimicking* a simple marking scheme
//! with RED (the DCTCP paper's `min_th = max_th = K` recommendation) versus
//! implementing a *true* marking scheme in the switch.
//!
//! The mimic still early-drops every non-ECT packet that crosses the
//! threshold; the true scheme never early-drops at all. Same threshold K,
//! same workload, same transport.
//!
//! Usage: `mimic_vs_marking [--tiny]`

use ecn_core::{ProtectionMode, QdiscSpec, RedConfig, SimpleMarkingConfig};
use experiments::scenario::{run_scenario_once, BufferDepth, ScenarioConfig, Transport};
use mrsim::{JobSpec, TerasortJob};
use netpacket::PacketKind;
use netsim::{ClusterSpec, Network, Simulation};
use simevent::SimDuration;
use tcpstack::TcpConfig;

fn run(cfg: &ScenarioConfig, qdisc: QdiscSpec, transport: Transport) -> (f64, f64, u64, u64) {
    let spec = ClusterSpec {
        racks: cfg.racks,
        hosts_per_rack: cfg.hosts_per_rack,
        host_link: cfg.host_link,
        uplink: cfg.uplink,
        switch_qdisc: qdisc,
        host_buffer_packets: 4 * cfg.deep_packets,
        seed: cfg.seed,
    };
    let n = spec.total_hosts();
    let job = JobSpec {
        input_bytes_per_node: cfg.input_bytes_per_node,
        map_waves: cfg.map_waves,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp: TcpConfig {
            recv_wnd: 128 << 10,
            sack: false,
            ..TcpConfig::with_ecn(transport.ecn_mode())
        },
        parallel_copies: 5,
        shuffle_jitter: cfg.shuffle_jitter,
        seed: cfg.seed ^ 0x5EED,
    };
    let net = Network::new(spec);
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    sim.time_limit = cfg.time_limit;
    let report = sim.run();
    assert!(report.app_done, "job must complete");
    let stats = sim.net.port_stats().total;
    (
        sim.app.result().runtime.as_secs_f64(),
        sim.net.latency().mean().as_secs_f64() * 1e6,
        stats.dropped_early.get(PacketKind::PureAck)
            + stats.dropped_early.get(PacketKind::Syn)
            + stats.dropped_early.get(PacketKind::SynAck),
        stats.marked.get(PacketKind::Data),
    )
}

fn main() {
    let cfg = experiments::cli::cli_args().scenario();
    let delay = SimDuration::from_micros(500);
    let cap = cfg.shallow_packets;
    let rate = cfg.host_link.rate_bps;
    let mean = cfg.mean_packet_bytes;

    println!("Mimicked vs true marking scheme — same K, shallow buffers, DCTCP:\n");
    println!(
        "{:<34} {:>9} {:>11} {:>14} {:>10}",
        "scheme", "runtime", "latency", "ctl-early-drop", "data-marks"
    );
    for (name, qdisc) in [
        (
            "RED mimic (min=max=K, paper §II)",
            QdiscSpec::Red(RedConfig::dctcp_mimic(
                delay,
                rate,
                mean,
                cap,
                ProtectionMode::Default,
            )),
        ),
        (
            "RED mimic + ack+syn protection",
            QdiscSpec::Red(RedConfig::dctcp_mimic(
                delay,
                rate,
                mean,
                cap,
                ProtectionMode::AckSyn,
            )),
        ),
        (
            "true simple marking (proposal 2)",
            QdiscSpec::SimpleMarking(SimpleMarkingConfig::from_target_delay(
                delay, rate, mean, cap,
            )),
        ),
    ] {
        let (rt, lat, ctl_drops, marks) = run(&cfg, qdisc, Transport::Dctcp);
        println!("{name:<34} {rt:>8.3}s {lat:>9.1} us {ctl_drops:>14} {marks:>10}");
    }
    println!(
        "\nThe mimic's marking behaviour is identical for ECT data, but it\n\
         early-drops the non-ECT control packets the paper cares about; the\n\
         true scheme (or the protected mimic) does not."
    );
    // Silence unused-import style warnings across builds.
    let _ = run_scenario_once;
    let _ = BufferDepth::Shallow;
}
