//! Simulated time: integer nanoseconds since simulation start.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in nanoseconds since t=0.
///
/// Integer-based so that simulations are bit-for-bit reproducible; 64 bits of
/// nanoseconds covers ~292 years of simulated time, far beyond any experiment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel
    /// for timers that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since t=0.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since t=0 as a float (for reporting only, never for control flow).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Microseconds since t=0 as a float (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add that never overflows past `SimTime::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The greatest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Panics if `s` is negative or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        let ns = s * 1e9;
        assert!(ns < u64::MAX as f64, "duration overflows SimDuration");
        SimDuration(ns.round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Microseconds as a float (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The time it takes to serialise `bytes` onto a link of `bits_per_sec`,
    /// rounded up to the next nanosecond so transmission never takes zero time.
    pub fn transmission(bytes: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        assert!(ns <= u64::MAX as u128, "transmission time overflows");
        SimDuration(ns as u64)
    }

    /// Saturating multiplication by an integer factor (RTO backoff etc.).
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked scale by a float, for RTT estimator arithmetic. Result is
    /// rounded to the nearest nanosecond and saturates at the representable max.
    pub fn mul_f64(self, k: f64) -> Self {
        assert!(
            k >= 0.0 && k.is_finite(),
            "scale must be finite and non-negative"
        );
        let ns = self.0 as f64 * k;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime underflow: rhs is later than lhs"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d, SimTime::from_micros(13));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_micros(1);
        let late = SimTime::from_micros(5);
        assert_eq!(late.since(early), SimDuration::from_micros(4));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn transmission_time_1500b_at_1gbps() {
        // 1500 bytes at 1 Gbps = 12000 bits / 1e9 bps = 12 us.
        let d = SimDuration::transmission(1500, 1_000_000_000);
        assert_eq!(d, SimDuration::from_micros(12));
    }

    #[test]
    fn transmission_time_rounds_up() {
        // 1 byte at 3 bps = 8/3 s = 2.666...s -> rounds up, never zero.
        let d = SimDuration::transmission(1, 3);
        assert_eq!(d.as_nanos(), 2_666_666_667);
        assert!(SimDuration::transmission(1, u64::MAX / 8).as_nanos() > 0);
    }

    #[test]
    fn transmission_time_10gbps() {
        // 1500 bytes at 10 Gbps = 1.2 us.
        let d = SimDuration::transmission(1500, 10_000_000_000);
        assert_eq!(d.as_nanos(), 1_200);
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        let d = SimDuration::from_nanos(10);
        assert_eq!(d.mul_f64(1.5), SimDuration::from_nanos(15));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_roundtrip() {
        let d = SimDuration::from_secs_f64(0.000_5);
        assert_eq!(d, SimDuration::from_micros(500));
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_mul(2),
            SimDuration::from_secs(2)
        );
    }
}
