#![warn(missing_docs)]

//! The paper's primary contribution: switch egress queue disciplines.
//!
//! "High Throughput and Low Latency on Hadoop Clusters using Explicit
//! Congestion Notification: The Untold Truth" (CLUSTER 2017) identifies that
//! ECN-enabled AQMs early-drop **non-ECT** packets — which on a Hadoop shuffle
//! are overwhelmingly pure ACKs, plus the SYN/SYN-ACK handshake — while only
//! *marking* ECT data packets. This crate implements:
//!
//! * [`DropTail`] — the plain FIFO baseline against which the paper
//!   normalises every result;
//! * [`Red`] — Random Early Detection (Floyd & Jacobson) with ECN support,
//!   per-packet or per-byte thresholds, EWMA or instantaneous queue length,
//!   and the paper's three **protection modes** ([`ProtectionMode`]):
//!   - `Default` — standard behaviour: non-ECT packets are early-dropped;
//!   - `EceBit` — packets whose TCP header carries ECE (SYN, SYN-ACK and
//!     congestion-echo ACKs) are exempt from early drop (paper proposal 1);
//!   - `AckSyn` — all pure ACKs, SYNs and SYN-ACKs are exempt (paper's
//!     strongest protection);
//! * [`SimpleMarking`] — the paper's second proposal: a *true* simple marking
//!   scheme with one instantaneous-queue threshold that marks ECT packets and
//!   **never early-drops anything**; non-ECT packets are lost only when the
//!   buffer is physically full.
//!
//! All disciplines implement [`netpacket::QueueDiscipline`] and keep full
//! per-packet-kind statistics so experiments can report exactly *who* was
//! dropped (the paper's Fig. 1 analysis).

mod codel;
mod config;
mod curvy_red;
mod droptail;
mod dualq;
mod fifo;
mod marking;
mod pie;
mod protection;
mod red;

pub use codel::{CoDel, CoDelConfig};
pub use config::{
    CurvyRedConfig, DualQConfig, PieConfig, QdiscSpec, RedConfig, SimpleMarkingConfig,
};
pub use curvy_red::CurvyRed;
pub use droptail::DropTail;
pub use dualq::DualQ;
pub use marking::SimpleMarking;
pub use pie::Pie;
pub use protection::ProtectionMode;
pub use red::Red;

use netpacket::QueueDiscipline;

/// Build a boxed queue discipline from a serialisable spec. `seed` feeds the
/// AQM's internal RNG (RED's and Curvy RED's cached draws, PIE's early
/// decision); CoDel, SimpleMarking and DualQ are deterministic without one.
pub fn build_qdisc(spec: &QdiscSpec, seed: u64) -> Box<dyn QueueDiscipline + Send> {
    match spec {
        QdiscSpec::DropTail { capacity_packets } => Box::new(DropTail::new(*capacity_packets)),
        QdiscSpec::Red(cfg) => Box::new(Red::new(cfg.clone(), seed)),
        QdiscSpec::SimpleMarking(cfg) => Box::new(SimpleMarking::new(cfg.clone())),
        QdiscSpec::CoDel(cfg) => Box::new(CoDel::new(cfg.clone())),
        QdiscSpec::CurvyRed(cfg) => Box::new(CurvyRed::new(cfg.clone(), seed)),
        QdiscSpec::Pie(cfg) => Box::new(Pie::new(cfg.clone(), seed)),
        QdiscSpec::DualQ(cfg) => Box::new(DualQ::new(cfg.clone())),
    }
}
