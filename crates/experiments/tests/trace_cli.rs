//! End-to-end tests of the `--trace` path: attaching a sink must never
//! change experiment output, same-seed traces must be byte-identical, and
//! the filter must restrict what reaches the file.

use experiments::cli::parse_trace_filter;
use experiments::scenario::{
    run_scenario_once, run_scenario_once_traced, BufferDepth, Engine, QueueKind, ScenarioConfig,
    Transport,
};
use simevent::SimDuration;
use simtrace::{diff_jsonl, JsonlSink, NullSink, TraceHandle};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` target the test can read back after the sink (boxed inside the
/// trace handle) is gone.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        let buf = self.0.lock().unwrap_or_else(|e| e.into_inner());
        String::from_utf8(buf.clone()).expect("traces are UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn point(cfg: &ScenarioConfig, trace: TraceHandle) -> experiments::scenario::RunMetrics {
    run_scenario_once_traced(
        cfg,
        Transport::Dctcp,
        QueueKind::Red(ecn_core::ProtectionMode::Default),
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
        Engine::Fast,
        trace,
    )
    .0
}

fn jsonl_trace(cfg: &ScenarioConfig, filter: simtrace::TraceFilter) -> String {
    let buf = SharedBuf::default();
    let trace = TraceHandle::with_filter(Box::new(JsonlSink::new(buf.clone())), filter);
    let _ = point(cfg, trace.clone());
    trace.flush().expect("in-memory sink cannot fail");
    buf.contents()
}

#[test]
fn null_sink_run_is_byte_identical_to_untraced_run() {
    let cfg = ScenarioConfig::tiny();
    let untraced = run_scenario_once(
        &cfg,
        Transport::Dctcp,
        QueueKind::Red(ecn_core::ProtectionMode::Default),
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
    );
    let traced = point(&cfg, TraceHandle::new(Box::new(NullSink)));
    assert_eq!(traced, untraced, "NullSink tracing perturbed the metrics");
    // Byte-identical serialized experiment output, not just struct equality.
    assert_eq!(
        serde_json::to_string(&traced).expect("metrics serialize"),
        serde_json::to_string(&untraced).expect("metrics serialize"),
    );
}

#[test]
fn same_seed_jsonl_traces_are_byte_identical() {
    let cfg = ScenarioConfig::tiny();
    let a = jsonl_trace(&cfg, simtrace::TraceFilter::default());
    let b = jsonl_trace(&cfg, simtrace::TraceFilter::default());
    assert!(
        !a.is_empty() && a.lines().count() > 100,
        "trace is substantial"
    );
    assert_eq!(a, b, "same-seed traces must be byte-identical");
    assert!(diff_jsonl(&a, &b).is_none());

    // And a genuinely different run diverges, with the divergence located.
    let mut other = cfg.clone();
    other.seed ^= 1;
    let c = jsonl_trace(&other, simtrace::TraceFilter::default());
    let d = diff_jsonl(&a, &c).expect("different seeds must diverge");
    assert!(d.left.is_some() || d.right.is_some());
}

#[test]
fn kind_filter_restricts_the_trace() {
    let cfg = ScenarioConfig::tiny();
    let all = jsonl_trace(&cfg, simtrace::TraceFilter::default());
    let syn_only = jsonl_trace(&cfg, parse_trace_filter("kind=syn").expect("valid filter"));
    let events = |t: &str| {
        t.lines()
            .filter(|l| !l.contains("\"meta\""))
            .map(str::to_owned)
            .collect::<Vec<_>>()
    };
    assert!(events(&syn_only).len() < events(&all).len());
    for line in events(&syn_only) {
        // Sender-side and sampler events carry no packet kind and always
        // pass the filter; everything else must be a SYN.
        assert!(
            line.contains("\"kind\":\"syn\"") || line.contains("\"kind\":null"),
            "non-SYN packet event leaked through the filter: {line}"
        );
    }
}
