//! Shared plumbing for the experiment binaries.

use crate::report::write_sweep_json;
use crate::scenario::{
    run_scenario_once_traced, BufferDepth, Engine, QueueKind, ScenarioConfig, Transport,
};
use crate::simsweep::{CacheMode, SweepOptions};
use crate::sweep::{sweep_with, SweepGrid, SweepResults};
use ecn_core::ProtectionMode;
use simevent::SimDuration;
use simtrace::{JsonlSink, TraceFilter, TraceHandle, KIND_NAMES};
use std::path::{Path, PathBuf};

/// The flags every experiment binary understands.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    /// `--tiny`: reduced grid / scaled-down cluster for smoke runs.
    pub tiny: bool,
    /// `--fresh`: ignore any cached sweep.
    pub fresh: bool,
    /// `--seed N`: override the scenario's base RNG seed.
    pub seed: Option<u64>,
    /// `--jobs N`: worker threads for the sweep (default: one per core).
    pub jobs: Option<usize>,
    /// `--no-cache`: bypass the content-addressed point cache under
    /// `results/.cache/` — every point executes and nothing is written back.
    pub no_cache: bool,
    /// `--trace PATH`: instead of the figure sweep, run one deterministic
    /// scenario point with packet-lifecycle tracing and write a JSONL trace
    /// to `PATH` (see [`run_traced_point`]), then exit.
    pub trace: Option<PathBuf>,
    /// `--trace-filter flow=N | kind=NAME`: restrict the trace to one flow
    /// or one packet kind. Only meaningful together with `--trace`.
    pub trace_filter: TraceFilter,
    /// `--cc reno|dctcp|cubic|bbr|prague`: override every flow's congestion
    /// controller. `None` keeps each transport's native pairing.
    pub cc: Option<tcpstack::CcAlg>,
}

impl CliArgs {
    /// Parse `args` (without the program name). Exits with status 2 on an
    /// unknown flag or a malformed `--seed`.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> CliArgs {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--tiny" => out.tiny = true,
                "--fresh" => out.fresh = true,
                "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(s)) => out.seed = Some(s),
                    _ => die("--seed needs an unsigned integer value"),
                },
                "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => out.jobs = Some(n),
                    _ => die("--jobs needs an integer >= 1"),
                },
                "--no-cache" => out.no_cache = true,
                "--trace" => match it.next() {
                    Some(p) => out.trace = Some(PathBuf::from(p)),
                    None => die("--trace needs an output path"),
                },
                "--trace-filter" => match it.next() {
                    Some(spec) => out.trace_filter = parse_filter_or_die(&spec),
                    None => die("--trace-filter needs flow=N or kind=NAME"),
                },
                "--cc" => match it.next() {
                    Some(v) => out.cc = Some(parse_cc_or_die(&v)),
                    None => die("--cc needs one of reno dctcp cubic bbr prague"),
                },
                other => {
                    if let Some(v) = other.strip_prefix("--seed=") {
                        match v.parse::<u64>() {
                            Ok(s) => out.seed = Some(s),
                            Err(_) => die("--seed needs an unsigned integer value"),
                        }
                    } else if let Some(v) = other.strip_prefix("--jobs=") {
                        match v.parse::<usize>() {
                            Ok(n) if n >= 1 => out.jobs = Some(n),
                            _ => die("--jobs needs an integer >= 1"),
                        }
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        out.trace = Some(PathBuf::from(v));
                    } else if let Some(v) = other.strip_prefix("--trace-filter=") {
                        out.trace_filter = parse_filter_or_die(v);
                    } else if let Some(v) = other.strip_prefix("--cc=") {
                        out.cc = Some(parse_cc_or_die(v));
                    } else {
                        die(&format!(
                            "unknown argument {other}; supported: --tiny --fresh --seed N \
                             --jobs N --no-cache --cc ALG --trace PATH \
                             --trace-filter flow=N|kind=NAME"
                        ))
                    }
                }
            }
        }
        out
    }

    /// The scenario these flags select: tiny or default, with the seed
    /// override applied.
    pub fn scenario(&self) -> ScenarioConfig {
        let mut cfg = if self.tiny {
            ScenarioConfig::tiny()
        } else {
            ScenarioConfig::default()
        };
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg.cc = self.cc;
        cfg
    }

    /// The orchestrator options these flags select. `--jobs N` bounds the
    /// worker pool; `--no-cache` disables the content-addressed point cache.
    /// `--trace` also disables it: a traced run must actually execute the
    /// simulation to produce events, so cached results may never satisfy it.
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            jobs: self.jobs.unwrap_or(0),
            cache: if self.no_cache || self.trace.is_some() {
                CacheMode::Disabled
            } else {
                CacheMode::default_dir()
            },
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

/// Parse `--trace-filter` syntax: `flow=N` restricts the trace to one flow
/// id, `kind=NAME` to one packet kind (`data`, `ack`, `syn`, `syn-ack`,
/// `fin`, `other`).
pub fn parse_trace_filter(spec: &str) -> Result<TraceFilter, String> {
    let mut f = TraceFilter::default();
    if let Some(v) = spec.strip_prefix("flow=") {
        f.flow = Some(
            v.parse::<u64>()
                .map_err(|_| format!("--trace-filter flow wants an unsigned id, got {v:?}"))?,
        );
    } else if let Some(v) = spec.strip_prefix("kind=") {
        let idx = KIND_NAMES
            .iter()
            .position(|k| *k == v)
            .ok_or_else(|| format!("unknown packet kind {v:?}; one of {}", KIND_NAMES.join(" ")))?;
        f.pkind = Some(idx as u8);
    } else {
        return Err(format!(
            "--trace-filter wants flow=N or kind=NAME, got {spec:?}"
        ));
    }
    Ok(f)
}

fn parse_filter_or_die(spec: &str) -> TraceFilter {
    match parse_trace_filter(spec) {
        Ok(f) => f,
        Err(msg) => die(&msg),
    }
}

fn parse_cc_or_die(v: &str) -> tcpstack::CcAlg {
    match tcpstack::CcAlg::parse(v) {
        Some(alg) => alg,
        None => die(&format!(
            "unknown congestion controller {v:?}; one of reno dctcp cubic bbr prague"
        )),
    }
}

/// The one scenario point `--trace` records: DCTCP through default RED on
/// shallow buffers at a 500 µs target — the configuration the paper's Fig. 1
/// pathology (and PR 2's SYN-drop claim) lives in. One repetition, fully
/// deterministic under `--seed`, so two invocations with the same flags must
/// produce byte-identical JSONL (checked in CI via `trace_diff`).
pub fn run_traced_point(args: &CliArgs, path: &Path) -> std::io::Result<()> {
    let mut cfg = args.scenario();
    cfg.seed_count = 1;
    let sink = JsonlSink::create(path)?;
    let trace = TraceHandle::with_filter(Box::new(sink), args.trace_filter);
    eprintln!(
        "[experiments] tracing one point (dctcp / red[{}] / shallow / 500us) to {}",
        ProtectionMode::Default.label(),
        path.display()
    );
    let (m, report) = run_scenario_once_traced(
        &cfg,
        Transport::Dctcp,
        QueueKind::Red(ProtectionMode::Default),
        BufferDepth::Shallow,
        SimDuration::from_micros(500),
        Engine::Fast,
        trace.clone(),
    );
    trace.flush()?;
    eprintln!(
        "[experiments] traced run done: runtime {:.3}s, {} events, completed={}",
        m.runtime_s, report.events, m.completed
    );
    Ok(())
}

/// Parse the process's own arguments. `--trace` short-circuits: the binary
/// records one traced scenario point (see [`run_traced_point`]) and exits
/// instead of running its figure sweep.
pub fn cli_args() -> CliArgs {
    let args = CliArgs::parse(std::env::args().skip(1));
    if let Some(path) = args.trace.clone() {
        match run_traced_point(&args, &path) {
            Ok(()) => std::process::exit(0),
            Err(e) => {
                eprintln!("[experiments] trace failed: {e}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Where sweep results are cached so Figures 2–4 binaries share one run.
pub fn default_cache_path(tiny: bool) -> PathBuf {
    let name = if tiny {
        "sweep_tiny.json"
    } else {
        "sweep.json"
    };
    PathBuf::from("results").join(name)
}

/// Load a cached sweep if it exists and was produced by the same grid;
/// otherwise run the sweep through the orchestrator and cache it. A `--seed`
/// override changes `grid.config.seed`, so a cache written under a different
/// seed fails the grid comparison and is re-run rather than silently reused.
///
/// Two cache tiers compose here: this aggregate file (so the Fig. 2–4
/// binaries share one run without recomputing anything at all), and the
/// orchestrator's per-point content-addressed cache under `results/.cache/`
/// (so a `--fresh` re-run, or a grid that overlaps a previous one, only
/// executes the points it has never seen).
pub fn sweep_cached(grid: &SweepGrid, path: &Path, opts: &SweepOptions) -> SweepResults {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(res) = serde_json::from_str::<SweepResults>(&text) {
            if res.grid == *grid {
                eprintln!("[experiments] using cached sweep from {}", path.display());
                return res;
            }
            eprintln!(
                "[experiments] cache at {} has a different grid; re-running",
                path.display()
            );
        }
    }
    eprintln!(
        "[experiments] running sweep: {} transports x {} queues x {} delays x 2 depths...",
        grid.transports.len(),
        grid.queues.len(),
        grid.target_delays_us.len()
    );
    let (res, stats) = sweep_with(grid, opts);
    eprintln!(
        "[experiments] sweep done: {} points executed, {} from cache",
        stats.executed, stats.cached
    );
    if let Err(e) = write_sweep_json(&res, path) {
        eprintln!("[experiments] warning: could not cache sweep: {e}");
    }
    res
}

/// Parse the common flags. Returns (grid, aggregate_cache_path, fresh,
/// orchestrator options).
pub fn parse_args() -> (SweepGrid, PathBuf, bool, SweepOptions) {
    let args = cli_args();
    let mut grid = if args.tiny {
        SweepGrid::tiny()
    } else {
        SweepGrid::default()
    };
    grid.config = args.scenario();
    let opts = args.sweep_options();
    (grid, default_cache_path(args.tiny), args.fresh, opts)
}

/// Run (or load) the sweep per the parsed flags.
pub fn sweep_from_args() -> SweepResults {
    let (grid, path, fresh, opts) = parse_args();
    if fresh {
        let _ = std::fs::remove_file(&path);
    }
    sweep_cached(&grid, &path, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliArgs {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&["--tiny", "--seed", "99", "--fresh"]);
        assert!(a.tiny && a.fresh);
        assert_eq!(a.seed, Some(99));
        assert_eq!(parse(&["--seed=123"]).seed, Some(123));
        assert_eq!(parse(&[]).seed, None);
    }

    #[test]
    fn parses_jobs_and_no_cache() {
        let a = parse(&["--jobs", "4", "--no-cache"]);
        assert_eq!(a.jobs, Some(4));
        assert!(a.no_cache);
        assert_eq!(parse(&["--jobs=2"]).jobs, Some(2));
        let d = parse(&[]);
        assert_eq!(d.jobs, None);
        assert!(!d.no_cache);
    }

    #[test]
    fn sweep_options_reflect_flags() {
        let d = parse(&[]).sweep_options();
        assert_eq!(d.jobs, 0, "default: one worker per core");
        assert_eq!(d.cache, CacheMode::default_dir());

        let a = parse(&["--jobs", "3"]).sweep_options();
        assert_eq!(a.jobs, 3);
        assert_eq!(a.cache, CacheMode::default_dir());

        let b = parse(&["--no-cache"]).sweep_options();
        assert_eq!(b.cache, CacheMode::Disabled);

        // --seed interacts with the cache through the key, not the mode: the
        // options stay cache-enabled and the ScenarioConfig (which is part of
        // every point key) carries the new seed.
        let s = parse(&["--seed", "42"]);
        assert_eq!(s.sweep_options().cache, CacheMode::default_dir());
        assert_eq!(s.scenario().seed, 42);
    }

    #[test]
    fn trace_forces_cache_bypass() {
        let t = parse(&["--trace", "out.jsonl"]).sweep_options();
        assert_eq!(
            t.cache,
            CacheMode::Disabled,
            "a traced point must execute, never load from cache"
        );
        // ...even when combined with --jobs and a warm-cache-friendly seed.
        let t2 = parse(&["--trace=out.jsonl", "--jobs", "4", "--seed", "7"]).sweep_options();
        assert_eq!(t2.cache, CacheMode::Disabled);
        assert_eq!(t2.jobs, 4);
    }

    #[test]
    fn parses_trace_flags() {
        let a = parse(&["--trace", "out.jsonl", "--trace-filter", "flow=3"]);
        assert_eq!(a.trace.as_deref(), Some(Path::new("out.jsonl")));
        assert_eq!(a.trace_filter.flow, Some(3));
        assert_eq!(a.trace_filter.pkind, None);
        let b = parse(&["--trace=t.jsonl", "--trace-filter=kind=syn"]);
        assert_eq!(b.trace.as_deref(), Some(Path::new("t.jsonl")));
        assert_eq!(b.trace_filter.pkind, Some(2), "syn is kind index 2");
        assert_eq!(parse(&[]).trace, None);
    }

    #[test]
    fn trace_filter_syntax() {
        assert_eq!(parse_trace_filter("flow=17").unwrap().flow, Some(17));
        for (i, name) in KIND_NAMES.iter().enumerate() {
            let f = parse_trace_filter(&format!("kind={name}")).unwrap();
            assert_eq!(f.pkind, Some(i as u8));
        }
        assert!(parse_trace_filter("flow=x").is_err());
        assert!(parse_trace_filter("kind=bogus").is_err());
        assert!(parse_trace_filter("queue=1").is_err());
    }

    #[test]
    fn seed_overrides_scenario() {
        let base = parse(&["--tiny"]).scenario();
        assert_eq!(base.seed, ScenarioConfig::tiny().seed);
        let a = parse(&["--tiny", "--seed", "7"]).scenario();
        assert_eq!(a.seed, 7);
        assert_eq!(a.racks, base.racks, "seed override changes only the seed");
    }
}
