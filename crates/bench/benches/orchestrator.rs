//! The sweep orchestrator itself: serial vs parallel execution of a
//! nano-scale grid, and the cost of a fully warm content-addressed cache
//! (pure lookup, no simulation). The parallel/serial ratio here is the
//! same quantity `bench_gate` enforces in CI as `sweep_fig2_shallow.speedup`.

use criterion::{criterion_group, criterion_main, Criterion};
use ecn_core::ProtectionMode;
use experiments::scenario::{QueueKind, Transport};
use experiments::{sweep_with, CacheMode, SweepGrid, SweepOptions};

/// 2 baselines + 4 grid points, each a complete nano Terasort.
fn nano_grid() -> SweepGrid {
    let mut grid = SweepGrid::tiny();
    grid.config = bench::nano_config();
    grid.transports = vec![Transport::Dctcp];
    grid.queues = vec![
        QueueKind::Red(ProtectionMode::Default),
        QueueKind::SimpleMarking,
    ];
    grid.target_delays_us = vec![500];
    grid
}

fn bench_orchestrator(c: &mut Criterion) {
    let grid = nano_grid();
    let mut g = c.benchmark_group("orchestrator");
    g.sample_size(10);

    g.bench_function("sweep_serial", |b| {
        let opts = SweepOptions {
            jobs: 1,
            cache: CacheMode::Disabled,
        };
        b.iter(|| sweep_with(&grid, &opts).1.executed)
    });

    g.bench_function("sweep_parallel", |b| {
        let opts = SweepOptions {
            jobs: 0, // one worker per core
            cache: CacheMode::Disabled,
        };
        b.iter(|| sweep_with(&grid, &opts).1.executed)
    });

    // Warm-cache replay: every point served from disk. This is the fixed
    // cost a figure binary pays when nothing changed since the last run.
    let cache_dir = std::env::temp_dir().join(format!("ecn-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let warm = SweepOptions {
        jobs: 0,
        cache: CacheMode::Dir(cache_dir.clone()),
    };
    let (_, stats) = sweep_with(&grid, &warm); // populate
    println!(
        "[orchestrator @nano] cache populated: {} points",
        stats.executed
    );
    g.bench_function("sweep_warm_cache", |b| {
        b.iter(|| {
            let (_, stats) = sweep_with(&grid, &warm);
            assert_eq!(stats.executed, 0);
            stats.cached
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

criterion_group!(benches, bench_orchestrator);
criterion_main!(benches);
