#![warn(missing_docs)]

//! Experiment harness reproducing the paper's evaluation (§IV).
//!
//! One [`run_scenario`] call = one point of one figure: a Terasort job on the
//! simulated cluster with a chosen transport (TCP / TCP-ECN / DCTCP), queue
//! discipline (DropTail / RED with a protection mode / simple marking),
//! buffer depth (shallow / deep) and RED target delay. A [`sweep()`] runs the
//! whole grid — in parallel, since every point is an independent,
//! deterministically seeded simulation — and the `figures` module renders the
//! paper's Figures 2, 3 and 4 from one sweep, plus Fig. 1's queue snapshot
//! and Tables I–II.

pub mod claims;
pub mod cli;
pub mod figures;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use scenario::{run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport};
pub use sweep::{sweep, SweepGrid, SweepPoint, SweepResults};
