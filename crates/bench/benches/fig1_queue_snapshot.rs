//! Figure 1: the congested-queue snapshot scenario (stock RED + ECN under a
//! Terasort shuffle). The bench times the full nano-scale simulation and
//! prints the Fig. 1 composition it measures.

use bench::nano_config;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::fig1;
use simevent::SimDuration;

fn bench_fig1(c: &mut Criterion) {
    let cfg = nano_config();
    // Regenerate the figure data once, visibly.
    let rep = fig1(&cfg, SimDuration::from_micros(200));
    println!(
        "[fig1 @nano] mean occupancy {:.1} pkts, data fraction {:.0}%, \
         ACK early-drops {}, data early-drops {} ({}% of early drops hit ACKs)",
        rep.mean_occupancy,
        rep.data_fraction * 100.0,
        rep.acks_early_dropped,
        rep.data_early_dropped,
        (rep.ack_share_of_early_drops * 100.0).round()
    );

    let mut g = c.benchmark_group("fig1_queue_snapshot");
    g.sample_size(10);
    g.bench_function("red_default_shallow_traced", |b| {
        b.iter(|| fig1(&cfg, SimDuration::from_micros(200)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
