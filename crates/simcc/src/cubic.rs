//! CUBIC (RFC 8312): window growth follows `W(t) = C·(t − K)³ + W_max`
//! around the last reduction point, with the TCP-friendly region, fast
//! convergence, and a HyStart-style hybrid slow start that exits on RTT
//! inflation instead of waiting for loss.
//!
//! Internal window math is in segments (as in the RFC); the public surface
//! is bytes like every other controller.

use crate::{CcAlg, CcParams, CongestionController, Window};

/// Multiplicative decrease factor.
const BETA: f64 = 0.7;
/// Cubic scaling constant C, segments/sec³.
const C: f64 = 0.4;
/// HyStart: RTT samples per round.
const HYSTART_SAMPLES: u32 = 8;
/// HyStart: minimum RTT inflation treated as queue growth, ns.
const HYSTART_MIN_DELTA_NS: u64 = 4_000_000;

/// CUBIC per-flow state.
#[derive(Debug, Clone, Copy)]
pub struct Cubic {
    w: Window,
    /// Window at the last reduction, segments (after fast convergence).
    w_max_seg: f64,
    /// Time to return to `w_max_seg`, seconds.
    k: f64,
    /// Epoch start (first ACK of the current avoidance epoch), ns; 0 = unset.
    epoch_start_ns: u64,
    /// Last RTT sample, ns (0 until the first sample).
    srtt_ns: u64,
    /// HyStart: previous round's minimum RTT, ns (0 = none yet).
    hy_last_min_ns: u64,
    /// HyStart: current round's minimum RTT, ns (0 = none yet).
    hy_cur_min_ns: u64,
    /// HyStart: samples seen this round.
    hy_count: u32,
}

impl Cubic {
    /// Fresh state at the initial window.
    pub fn new(p: &CcParams) -> Cubic {
        Cubic {
            w: Window::new(p),
            w_max_seg: 0.0,
            k: 0.0,
            epoch_start_ns: 0,
            srtt_ns: 0,
            hy_last_min_ns: 0,
            hy_cur_min_ns: 0,
            hy_count: 0,
        }
    }

    /// Start a reduction: record the origin point with fast convergence and
    /// drop ssthresh to `beta·cwnd`. The caller sets the post-reduction cwnd.
    fn reduce(&mut self, p: &CcParams) {
        let w_seg = self.w.cwnd / p.mss;
        if w_seg < self.w_max_seg {
            // Fast convergence: we lost ground since the last episode, so
            // release capacity faster for newcomers.
            self.w_max_seg = w_seg * (2.0 - BETA) / 2.0;
        } else {
            self.w_max_seg = w_seg;
        }
        self.w.ssthresh = (self.w.cwnd * BETA).max(2.0 * p.mss);
        self.epoch_start_ns = 0;
    }

    /// The cubic curve `W(t) = C·(t − K)³ + W_max`, segments.
    fn w_cubic_seg(&self, t_sec: f64) -> f64 {
        let d = t_sec - self.k;
        C * d * d * d + self.w_max_seg
    }
}

impl CongestionController for Cubic {
    fn alg(&self) -> CcAlg {
        CcAlg::Cubic
    }
    fn cwnd(&self) -> f64 {
        self.w.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.w.ssthresh
    }

    fn on_ack(&mut self, p: &CcParams, newly: u64, now_ns: u64) {
        if self.w.cwnd < self.w.ssthresh {
            // Slow start (HyStart exit happens via on_rtt_sample).
            self.w.cwnd += p.mss.min(newly as f64);
            return;
        }
        let w_seg = self.w.cwnd / p.mss;
        if self.epoch_start_ns == 0 {
            // New avoidance epoch: anchor the curve at the current window.
            self.epoch_start_ns = now_ns.max(1);
            if self.w_max_seg < w_seg {
                self.w_max_seg = w_seg;
            }
            self.k = ((self.w_max_seg - w_seg) / C).cbrt();
        }
        let srtt_sec = self.srtt_ns as f64 / 1e9;
        let t = now_ns.saturating_sub(self.epoch_start_ns) as f64 / 1e9 + srtt_sec;
        let target_seg = self.w_cubic_seg(t);
        // TCP-friendly region (RFC 8312 §4.2): track at least standard TCP's
        // AIMD estimate so short-RTT paths are not starved by the flat
        // plateau around W_max.
        let w_est_seg = if self.srtt_ns > 0 {
            self.w_max_seg * BETA + (3.0 * (1.0 - BETA) / (1.0 + BETA)) * (t / srtt_sec)
        } else {
            0.0
        };
        let target_seg = target_seg.max(w_est_seg);
        if target_seg > w_seg {
            // Spread the distance-to-target over the next window of ACKs.
            self.w.cwnd += p.mss * (target_seg - w_seg) / w_seg;
        } else {
            // At or above the curve: probe minimally (~1 segment / 100 RTT).
            self.w.cwnd += p.mss * 0.01 / w_seg;
        }
    }

    fn on_rtt_sample(&mut self, _p: &CcParams, rtt_ns: u64, _now_ns: u64, _ce: bool) {
        self.srtt_ns = rtt_ns;
        if self.w.cwnd >= self.w.ssthresh {
            return;
        }
        // HyStart delay-increase detection, rounds of HYSTART_SAMPLES.
        if self.hy_cur_min_ns == 0 || rtt_ns < self.hy_cur_min_ns {
            self.hy_cur_min_ns = rtt_ns;
        }
        self.hy_count += 1;
        if self.hy_count >= HYSTART_SAMPLES {
            if self.hy_last_min_ns > 0 {
                let thresh =
                    self.hy_last_min_ns + (self.hy_last_min_ns / 8).max(HYSTART_MIN_DELTA_NS);
                if self.hy_cur_min_ns >= thresh {
                    // Queue is building: leave slow start at the current
                    // window instead of overshooting into loss.
                    self.w.ssthresh = self.w.cwnd;
                }
            }
            self.hy_last_min_ns = self.hy_cur_min_ns;
            self.hy_cur_min_ns = 0;
            self.hy_count = 0;
        }
    }

    fn on_ece(&mut self, p: &CcParams) -> bool {
        self.reduce(p);
        self.w.cwnd = self.w.ssthresh;
        true
    }
    fn on_loss(&mut self, p: &CcParams, _flight: u64) {
        self.reduce(p);
        self.w.cwnd = self.w.ssthresh + 3.0 * p.mss;
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.w.partial_ack(p, newly);
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd += p.mss;
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd -= p.mss;
    }
    fn on_recovery_exit(&mut self, _p: &CcParams) {
        self.w.cwnd = self.w.ssthresh;
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        let _ = flight;
        self.reduce(p);
        self.w.cwnd = p.mss;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_params;

    const MSS: f64 = 1460.0;

    /// Put the controller in congestion avoidance at `w0` segments with a
    /// recorded `w_max` of `wmax` segments, epoch not yet anchored.
    fn in_avoidance(p: &CcParams, w0: f64, wmax: f64) -> Cubic {
        let mut c = Cubic::new(p);
        c.w.cwnd = w0 * MSS;
        c.w.ssthresh = w0 * MSS;
        c.w_max_seg = wmax;
        c
    }

    /// Drive a dense ACK train (one per `step_ns`) so per-ACK growth
    /// integrates the curve closely, then compare against closed form.
    #[test]
    fn window_tracks_closed_form_curve() {
        let p = test_params();
        let w0 = 30.0;
        let wmax = 100.0;
        let mut c = in_avoidance(&p, w0, wmax);
        let k = ((wmax - w0) / C).cbrt();
        let step_ns = 500_000u64; // dense ack clock, 0.5 ms
                                  // At t = K the curve returns to W_max.
        let t_end_ns = (k * 1e9) as u64;
        let mut now = 1_000u64;
        while now < 1_000 + t_end_ns {
            c.on_ack(&p, 1460, now);
            now += step_ns;
        }
        let w_seg = c.cwnd() / MSS;
        assert!(
            (w_seg - wmax).abs() < 2.0,
            "at t=K the window must be back at W_max: {w_seg} vs {wmax}"
        );
        // Convex region: half of K further on, closed form says
        // W = C*(K/2)^3 + W_max.
        let t2_ns = t_end_ns + (k / 2.0 * 1e9) as u64;
        while now < 1_000 + t2_ns {
            c.on_ack(&p, 1460, now);
            now += step_ns;
        }
        let expect = C * (k / 2.0) * (k / 2.0) * (k / 2.0) + wmax;
        let w_seg = c.cwnd() / MSS;
        assert!(
            (w_seg - expect).abs() < 2.5,
            "convex growth must follow the cubic: {w_seg} vs {expect}"
        );
    }

    #[test]
    fn fast_convergence_shrinks_w_max_on_back_to_back_losses() {
        let p = test_params();
        let mut c = in_avoidance(&p, 100.0, 100.0);
        c.on_loss(&p, 100 * 1460);
        let w_max_1 = c.w_max_seg;
        assert_eq!(w_max_1, 100.0, "first loss records the full window");
        // Recovery exit then a second loss below the previous W_max.
        c.on_recovery_exit(&p);
        c.on_loss(&p, 70 * 1460);
        assert!(
            c.w_max_seg < 70.0,
            "fast convergence must release capacity: {}",
            c.w_max_seg
        );
        let expect = 70.0 * (2.0 - BETA) / 2.0;
        assert!((c.w_max_seg - expect).abs() < 1e-9);
    }

    #[test]
    fn hystart_exits_slow_start_on_rtt_inflation() {
        let p = test_params();
        let mut c = Cubic::new(&p);
        assert!(c.cwnd() < c.ssthresh(), "starts in slow start");
        // Round 1: flat 1 ms RTTs.
        for _ in 0..HYSTART_SAMPLES {
            c.on_rtt_sample(&p, 1_000_000, 0, false);
        }
        assert!(c.cwnd() < c.ssthresh(), "flat RTTs keep slow start");
        // Round 2: RTT jumped to 6 ms (> 1 ms + max(1/8 ms, 4 ms)).
        for _ in 0..HYSTART_SAMPLES {
            c.on_rtt_sample(&p, 6_000_000, 0, false);
        }
        assert_eq!(
            c.ssthresh(),
            c.cwnd(),
            "inflated round must exit slow start at the current window"
        );
    }

    #[test]
    fn ece_reduction_uses_beta_not_half() {
        let p = test_params();
        let mut c = in_avoidance(&p, 100.0, 100.0);
        c.on_ece(&p);
        assert!((c.cwnd() - 100.0 * MSS * BETA).abs() < 1e-6);
    }
}
