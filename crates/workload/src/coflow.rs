//! Coflow tracking: groups of flows whose *collective* completion time is
//! the application-level metric (Chowdhury & Stoica's abstraction).
//!
//! An incast round, an RPC fan-out, or one reducer's shuffle are all
//! coflows: the application advances when the **last** member flow finishes,
//! so the coflow completion time (CCT), not any individual FCT, is what the
//! user experiences. [`CoflowSet`] is the bookkeeping shared by the
//! `workload` generators and `mrsim`'s Terasort shuffle.

use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Group {
    registered: u64,
    completed: u64,
    /// No more member flows will be registered (set by [`CoflowSet::seal`]).
    sealed: bool,
    started: SimTime,
    finished: Option<SimTime>,
}

/// Tracks open and finished coflows by numeric group id.
#[derive(Debug, Clone, Default)]
pub struct CoflowSet {
    groups: BTreeMap<u64, Group>,
}

impl CoflowSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one member flow of coflow `group`, started at `now`. The
    /// coflow's start time is the earliest registration.
    pub fn register(&mut self, group: u64, now: SimTime) {
        let g = self.groups.entry(group).or_insert(Group {
            registered: 0,
            completed: 0,
            sealed: false,
            started: now,
            finished: None,
        });
        assert!(
            g.finished.is_none(),
            "coflow {group} already finished; cannot grow it"
        );
        g.registered += 1;
        g.started = g.started.min(now);
    }

    /// Declare that coflow `group` will receive no more members. A sealed
    /// coflow finishes the moment its last registered flow completes.
    pub fn seal(&mut self, group: u64) {
        if let Some(g) = self.groups.get_mut(&group) {
            g.sealed = true;
        }
    }

    /// Record one member completion. Returns `true` when this completion
    /// finished the (sealed) coflow.
    pub fn complete_one(&mut self, group: u64, now: SimTime) -> bool {
        let g = self
            .groups
            .get_mut(&group)
            .expect("completion for unregistered coflow");
        assert!(g.completed < g.registered, "more completions than members");
        g.completed += 1;
        if g.sealed && g.completed == g.registered && g.finished.is_none() {
            g.finished = Some(now);
            return true;
        }
        false
    }

    /// Completion time of a finished coflow.
    pub fn cct(&self, group: u64) -> Option<SimDuration> {
        let g = self.groups.get(&group)?;
        g.finished.map(|f| f.since(g.started))
    }

    /// Number of coflows ever registered.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no coflow was ever registered.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// True when every registered coflow is sealed and finished.
    pub fn all_finished(&self) -> bool {
        self.groups.values().all(|g| g.finished.is_some())
    }

    /// Summary statistics over all finished coflows.
    pub fn summary(&self) -> CoflowSummary {
        let mut ccts_us: Vec<f64> = self
            .groups
            .values()
            .filter_map(|g| g.finished.map(|f| f.since(g.started).as_micros_f64()))
            .collect();
        ccts_us.sort_by(f64::total_cmp);
        let finished = ccts_us.len() as u64;
        let mean = if finished > 0 {
            ccts_us.iter().sum::<f64>() / finished as f64
        } else {
            0.0
        };
        CoflowSummary {
            coflows: self.groups.len() as u64,
            finished,
            cct_mean_us: mean,
            cct_max_us: ccts_us.last().copied().unwrap_or(0.0),
        }
    }
}

/// Aggregate coflow statistics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoflowSummary {
    /// Coflows registered.
    pub coflows: u64,
    /// Coflows that finished.
    pub finished: u64,
    /// Mean coflow completion time, microseconds.
    pub cct_mean_us: f64,
    /// Largest coflow completion time, microseconds.
    pub cct_max_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coflow_finishes_on_last_member() {
        let mut s = CoflowSet::new();
        s.register(7, SimTime::from_nanos(100));
        s.register(7, SimTime::from_nanos(50));
        s.seal(7);
        assert!(!s.complete_one(7, SimTime::from_nanos(500)));
        assert_eq!(s.cct(7), None, "one member still running");
        assert!(s.complete_one(7, SimTime::from_nanos(900)));
        // CCT spans earliest registration to last completion.
        assert_eq!(s.cct(7), Some(SimDuration::from_nanos(850)));
        assert!(s.all_finished());
    }

    #[test]
    fn unsealed_coflow_never_finishes() {
        let mut s = CoflowSet::new();
        s.register(1, SimTime::ZERO);
        assert!(!s.complete_one(1, SimTime::from_nanos(10)));
        assert!(!s.all_finished());
        s.seal(1);
        assert!(!s.all_finished(), "sealing alone does not finish");
        s.register(1, SimTime::from_nanos(20));
        assert!(s.complete_one(1, SimTime::from_nanos(30)));
    }

    #[test]
    fn summary_over_finished_groups() {
        let mut s = CoflowSet::new();
        for g in 0..3u64 {
            s.register(g, SimTime::ZERO);
            s.seal(g);
        }
        s.complete_one(0, SimTime::from_micros(10));
        s.complete_one(1, SimTime::from_micros(30));
        let sum = s.summary();
        assert_eq!(sum.coflows, 3);
        assert_eq!(sum.finished, 2);
        assert_eq!(sum.cct_mean_us, 20.0);
        assert_eq!(sum.cct_max_us, 30.0);
        assert!(!s.all_finished());
    }

    #[test]
    fn empty_set() {
        let s = CoflowSet::new();
        assert!(s.is_empty());
        assert!(s.all_finished(), "vacuously true");
        assert_eq!(s.summary().coflows, 0);
    }
}
