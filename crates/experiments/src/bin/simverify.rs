//! `simverify` — certify the determinism contract (DESIGN.md §14).
//!
//! Re-runs the pinned scenario grid under N seeded permutations of
//! same-instant tie-break order and fails (exit 1) on any metrics or trace
//! divergence; also asserts the production FIFO order is run-to-run
//! reproducible. Artifacts for diverging cells are left under
//! `results/simverify/<cell>/` (CI uploads them on failure).
//!
//! ```text
//! simverify [--permutations N] [--seed N] [--out DIR] [--no-trace]
//! ```

use experiments::verify::{pinned_grid, verify_grid, VerifyOptions};
use std::path::PathBuf;

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn parse_args() -> VerifyOptions {
    let mut opts = VerifyOptions::default();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--permutations" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 2 => opts.permutations = n,
                _ => die("--permutations needs an integer >= 2"),
            },
            "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.base_seed = s,
                _ => die("--seed needs an unsigned integer value"),
            },
            "--out" => match it.next() {
                Some(p) => opts.out_dir = PathBuf::from(p),
                None => die("--out needs a directory path"),
            },
            "--no-trace" => opts.trace = false,
            other => {
                if let Some(v) = other.strip_prefix("--permutations=") {
                    match v.parse::<u32>() {
                        Ok(n) if n >= 2 => opts.permutations = n,
                        _ => die("--permutations needs an integer >= 2"),
                    }
                } else if let Some(v) = other.strip_prefix("--seed=") {
                    match v.parse::<u64>() {
                        Ok(s) => opts.base_seed = s,
                        Err(_) => die("--seed needs an unsigned integer value"),
                    }
                } else if let Some(v) = other.strip_prefix("--out=") {
                    opts.out_dir = PathBuf::from(v);
                } else {
                    die(&format!(
                        "unknown argument {other}; supported: --permutations N \
                         --seed N --out DIR --no-trace"
                    ))
                }
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    eprintln!(
        "[simverify] pinned grid x {} tie-break permutations (seeds {}..{}), traces {}",
        opts.permutations,
        opts.base_seed,
        opts.base_seed + u64::from(opts.permutations),
        if opts.trace { "on" } else { "off" },
    );
    let report = match verify_grid(&pinned_grid(), &opts) {
        Ok(r) => r,
        Err(e) => die(&format!("[simverify] io error: {e}")),
    };
    let failed: Vec<&str> = report
        .cells
        .iter()
        .filter(|c| !c.ok)
        .map(|c| c.label.as_str())
        .collect();
    if failed.is_empty() {
        eprintln!(
            "[simverify] PASS: {} cells independent of same-instant tie-break order",
            report.cells.len()
        );
    } else {
        eprintln!(
            "[simverify] FAIL: schedule-dependent results in: {} (see {})",
            failed.join(", "),
            opts.out_dir.display()
        );
        std::process::exit(1);
    }
}
