//! The waiver file, `simlint.toml`.
//!
//! A tiny line-oriented parser for exactly the subset the linter needs:
//! `[[waiver]]` tables with `code`, `path`, and `reason` string keys. Every
//! waiver **must** carry a non-empty justification — an allowlist without
//! reasons rots into noise.
//!
//! ```toml
//! [[waiver]]
//! code = "SL004"
//! path = "crates/simevent/src/time.rs"
//! reason = "expect() documents checked-arithmetic overflow contracts"
//! ```
//!
//! `path` is a prefix match on workspace-relative paths, so one waiver can
//! cover a file or a whole directory.

use crate::rules::Finding;

/// One `[[waiver]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Diagnostic code this waiver silences (`SL004`, ...).
    pub code: String,
    /// Workspace-relative path prefix the waiver applies to.
    pub path: String,
    /// Mandatory human justification.
    pub reason: String,
}

impl Waiver {
    /// Does this waiver cover `finding`?
    pub fn covers(&self, finding: &Finding) -> bool {
        self.code == finding.code && finding.file.starts_with(self.path.as_str())
    }
}

/// Parse the waiver file. Returns `Err` with a line-numbered message on any
/// malformed entry; an empty or comment-only file parses to no waivers.
pub fn parse(text: &str) -> Result<Vec<Waiver>, String> {
    struct Partial {
        start_line: usize,
        code: Option<String>,
        path: Option<String>,
        reason: Option<String>,
    }

    fn finish(p: Partial) -> Result<Waiver, String> {
        let line = p.start_line;
        let code = p
            .code
            .ok_or_else(|| format!("waiver at line {line}: missing `code`"))?;
        if !(code.len() == 5
            && code.starts_with("SL")
            && code[2..].chars().all(|c| c.is_ascii_digit()))
        {
            return Err(format!(
                "waiver at line {line}: `code` must look like SL001, got {code:?}"
            ));
        }
        let path = p
            .path
            .ok_or_else(|| format!("waiver at line {line}: missing `path`"))?;
        let reason = p
            .reason
            .ok_or_else(|| format!("waiver at line {line}: missing `reason`"))?;
        if reason.trim().is_empty() {
            return Err(format!(
                "waiver at line {line}: `reason` must be a non-empty justification"
            ));
        }
        Ok(Waiver { code, path, reason })
    }

    let mut waivers = Vec::new();
    let mut current: Option<Partial> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(p) = current.take() {
                waivers.push(finish(p)?);
            }
            current = Some(Partial {
                start_line: lineno,
                code: None,
                path: None,
                reason: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "simlint.toml line {lineno}: expected `key = \"value\"`"
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if !(value.starts_with('"') && value.ends_with('"') && value.len() >= 2) {
            return Err(format!(
                "simlint.toml line {lineno}: value for `{key}` must be a double-quoted string"
            ));
        }
        let value = value[1..value.len() - 1].to_string();
        let Some(p) = current.as_mut() else {
            return Err(format!(
                "simlint.toml line {lineno}: `{key}` outside a [[waiver]] table"
            ));
        };
        match key {
            "code" => p.code = Some(value),
            "path" => p.path = Some(value),
            "reason" => p.reason = Some(value),
            other => {
                return Err(format!(
                    "simlint.toml line {lineno}: unknown key `{other}` (expected code/path/reason)"
                ));
            }
        }
    }
    if let Some(p) = current.take() {
        waivers.push(finish(p)?);
    }
    Ok(waivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiple_waivers() {
        let text = "# header comment\n\n\
                    [[waiver]]\ncode = \"SL004\"\npath = \"crates/a/src\"\nreason = \"invariant\"\n\n\
                    [[waiver]]\ncode = \"SL005\"\npath = \"crates/b/src/x.rs\"\nreason = \"bounded\"\n";
        let ws = parse(text).expect("parses");
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].code, "SL004");
        assert_eq!(ws[1].path, "crates/b/src/x.rs");
    }

    #[test]
    fn empty_file_ok() {
        assert!(parse("").expect("ok").is_empty());
        assert!(parse("# only comments\n").expect("ok").is_empty());
    }

    #[test]
    fn missing_reason_rejected() {
        let text = "[[waiver]]\ncode = \"SL004\"\npath = \"crates/a\"\n";
        assert!(parse(text).is_err());
        let blank = "[[waiver]]\ncode = \"SL004\"\npath = \"crates/a\"\nreason = \"  \"\n";
        assert!(parse(blank).is_err());
    }

    #[test]
    fn bad_code_rejected() {
        let text = "[[waiver]]\ncode = \"XX1\"\npath = \"crates/a\"\nreason = \"r\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn key_outside_table_rejected() {
        assert!(parse("code = \"SL001\"\n").is_err());
    }

    #[test]
    fn prefix_match_covers() {
        let w = Waiver {
            code: "SL004".into(),
            path: "crates/netsim/src".into(),
            reason: "r".into(),
        };
        let f = Finding {
            file: "crates/netsim/src/network.rs".into(),
            line: 1,
            code: "SL004",
            message: String::new(),
            waived: false,
        };
        assert!(w.covers(&f));
        let other = Finding {
            file: "crates/core/src/red.rs".into(),
            ..f.clone()
        };
        assert!(!w.covers(&other));
    }
}
