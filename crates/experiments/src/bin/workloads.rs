//! Datacenter workload suite: the `workload` crate's three generators —
//! partition-aggregate incast, permutation elephants + Poisson mice, and
//! closed-loop RPC — each swept across four switch configurations:
//!
//! * DropTail (the loss-signalled baseline),
//! * RED-mimic with no protection (the paper's problem configuration:
//!   every non-ECT packet above K is early-DROPPED),
//! * RED-mimic with ACK+SYN protection (the paper's fix),
//! * the true simple marking scheme (never early-drops anything).
//!
//! All runs use DCTCP. Per point it reports flow-completion-time and
//! slowdown percentiles (mice vs elephants), coflow completion times,
//! goodput, and the non-ECT early-drop counters, writing
//! `results/workloads_{incast,mixed,rpc}[_tiny].json` plus a claims file.
//! Output JSON is deterministic: two same-seed runs are byte-identical.
//!
//! The 12 (workload × queue) points are independent simulations, so they run
//! through the `simsweep` orchestrator: in parallel under `--jobs N`, with
//! results merged back in the canonical order, and served from the
//! content-addressed cache under `results/.cache/` unless `--no-cache`.
//!
//! Exits nonzero if any claim check fails, so CI catches regressions in the
//! reproduced pathology rather than just printing FAIL and passing.
//!
//! Usage: `workloads [--tiny] [--seed N] [--jobs N] [--no-cache]`

use ecn_core::{ProtectionMode, QdiscSpec, RedConfig, SimpleMarkingConfig};
use experiments::cli::cli_args;
use experiments::report::write_json;
use experiments::scenario::{ScenarioConfig, Transport};
use experiments::simsweep;
use netpacket::{NodeId, PacketKind};
use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
use serde::{Deserialize, Serialize};
use simevent::{SimDuration, SimTime};
use simmetrics::{FctSummary, IdealFct};
use std::path::Path;
use tcpstack::TcpConfig;
use workload::{
    CoflowSummary, Incast, IncastConfig, Mixed, MixedConfig, Rpc, RpcConfig, RpcSummary, SizeDist,
    TrafficModel, WorkloadApp,
};

/// The switch configurations every workload is swept across. `Mimic` is the
/// DCTCP paper's RED parametrisation (`min_th == max_th == K`,
/// instantaneous queue) — the scheme this paper shows early-drops every
/// non-ECT packet above K unless protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WlQueue {
    DropTail,
    Mimic(ProtectionMode),
    SimpleMarking,
}

impl WlQueue {
    fn label(self) -> String {
        match self {
            WlQueue::DropTail => "droptail".into(),
            WlQueue::Mimic(m) => format!("mimic[{}]", m.label()),
            WlQueue::SimpleMarking => "simple-marking".into(),
        }
    }

    fn qdisc(self, cfg: &ScenarioConfig, target: SimDuration) -> QdiscSpec {
        let cap = cfg.shallow_packets;
        let rate = cfg.host_link.rate_bps;
        let mean = cfg.mean_packet_bytes;
        match self {
            WlQueue::DropTail => QdiscSpec::DropTail {
                capacity_packets: cap,
            },
            WlQueue::Mimic(mode) => {
                QdiscSpec::Red(RedConfig::dctcp_mimic(target, rate, mean, cap, mode))
            }
            WlQueue::SimpleMarking => QdiscSpec::SimpleMarking(
                SimpleMarkingConfig::from_target_delay(target, rate, mean, cap),
            ),
        }
    }
}

const QUEUES: [WlQueue; 4] = [
    WlQueue::DropTail,
    WlQueue::Mimic(ProtectionMode::Default),
    WlQueue::Mimic(ProtectionMode::AckSyn),
    WlQueue::SimpleMarking,
];

fn queue_from_label(label: &str) -> WlQueue {
    QUEUES
        .into_iter()
        .find(|q| q.label() == label)
        .unwrap_or_else(|| panic!("unknown queue label {label:?}"))
}

/// Cache identity of one (workload × queue) point. Everything the simulation
/// consumes is in here — the scenario (seed, links, buffers), the per-workload
/// generator config, the cluster size and the run's time limit — so two runs
/// with the same key are the same deterministic simulation.
#[derive(Debug, Clone, Serialize)]
struct WlKey {
    workload: String,
    queue: String,
    scenario: ScenarioConfig,
    hosts: u32,
    host_link: LinkSpec,
    time_limit: SimTime,
    incast: Option<IncastConfig>,
    mixed: Option<MixedConfig>,
    rpc: Option<RpcConfig>,
}

const WORKLOADS: [&str; 3] = ["incast", "mixed", "rpc"];

fn point_keys(cfg: &ScenarioConfig, sz: &WorkloadSizes) -> Vec<WlKey> {
    let mut keys = Vec::with_capacity(WORKLOADS.len() * QUEUES.len());
    for wl in WORKLOADS {
        for q in QUEUES {
            keys.push(WlKey {
                workload: wl.into(),
                queue: q.label(),
                scenario: cfg.clone(),
                hosts: sz.hosts,
                host_link: cfg.host_link,
                time_limit: sz.time_limit,
                incast: (wl == "incast").then_some(sz.incast),
                mixed: (wl == "mixed").then_some(sz.mixed),
                rpc: (wl == "rpc").then_some(sz.rpc),
            });
        }
    }
    keys
}

/// One workload under one switch configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QueueResult {
    queue: String,
    /// Whether every flow completed inside the time limit.
    completed: bool,
    /// Delivered application bytes over the run's simulated span, bits/s.
    goodput_bps: f64,
    /// Simulated end of the run, seconds.
    end_time_s: f64,
    fct: FctSummary,
    coflows: CoflowSummary,
    /// Only for the RPC workload: request-latency/SLO accounting
    /// (`null` for the others).
    rpc: Option<RpcSummary>,
    /// Pure ACKs early-dropped at switch queues.
    acks_early_dropped: u64,
    /// SYN / SYN-ACKs early-dropped at switch queues.
    handshake_early_dropped: u64,
    /// Data packets CE-marked.
    data_marked: u64,
    /// Sender retransmission timeouts.
    timeouts: u64,
    /// SYN retransmissions (each one cost a 1 s connection-setup RTO).
    syn_retransmits: u64,
}

#[derive(Debug, Clone, Serialize)]
struct WorkloadReport {
    workload: String,
    seed: u64,
    hosts: u32,
    configs: Vec<QueueResult>,
}

/// The headline checks: the paper's non-ECT pathology must be visible in
/// every workload, and both fixes must erase it.
#[derive(Debug, Clone, Serialize)]
struct WorkloadClaims {
    /// Incast goodput under unprotected RED-mimic over ACK+SYN protection
    /// (expected well below 1: dropped SYNs serialise rounds on 1 s RTOs).
    incast_collapse_vs_protected: f64,
    /// Incast goodput under ACK+SYN protection over DropTail (expected ≈ 1:
    /// the fix restores full throughput).
    incast_protected_vs_droptail: f64,
    /// Incast goodput under true simple marking over ACK+SYN protection
    /// (expected ≈ 1: the marking scheme needs no protection heuristic).
    incast_marking_vs_protected: f64,
    /// ACKs early-dropped in the mixed workload under unprotected RED-mimic
    /// (expected > 0: elephants' ACKs cross loaded reverse-path ports).
    mixed_ack_drops_unprotected: u64,
    /// ...and under ACK+SYN protection plus simple marking (expected 0).
    mixed_ack_drops_protected: u64,
    /// RPC SLO violations under unprotected RED-mimic (expected > the
    /// protected count: response-flow SYNs die at the loaded client port).
    rpc_slo_violations_unprotected: u64,
    /// RPC SLO violations under ACK+SYN protection.
    rpc_slo_violations_protected: u64,
}

struct WorkloadSizes {
    hosts: u32,
    incast: IncastConfig,
    mixed: MixedConfig,
    rpc: RpcConfig,
    time_limit: SimTime,
}

fn sizes(cfg: &ScenarioConfig, tiny: bool) -> WorkloadSizes {
    let hosts = if tiny { 4 } else { 12 };
    WorkloadSizes {
        hosts,
        incast: IncastConfig {
            aggregator: NodeId(0),
            fanin: hosts - 1,
            // Each response is long enough that the aggregator port holds a
            // standing DCTCP queue at K for most of the round, so every
            // straggler SYN is a coin flip against the early-drop gate.
            response_bytes: if tiny { 2_000_000 } else { 1_000_000 },
            rounds: if tiny { 4 } else { 5 },
            // The stagger is the pathology's trigger: early responders hold
            // the aggregator port at K while late responders' SYNs arrive.
            stagger: SimDuration::from_millis(3),
            round_gap: SimDuration::from_millis(2),
            seed: cfg.seed,
        },
        mixed: MixedConfig {
            elephant_lanes: hosts,
            elephant_bytes: if tiny { 2_000_000 } else { 4_000_000 },
            elephants_per_lane: 2,
            mice: if tiny { 20 } else { 80 },
            mice_mean_gap: SimDuration::from_millis(1),
            mice_sizes: SizeDist::WebSearch,
            seed: cfg.seed,
        },
        rpc: RpcConfig {
            clients: if tiny { 2 } else { 4 },
            fanout: hosts.min(7) - 1,
            request_bytes: 2_000,
            // 256 KB responses take ~2 ms on the client's access link, so a
            // straggling server's response SYN arrives while the fast
            // servers' responses still hold the client port at K.
            response_bytes: 256_000,
            requests_per_client: if tiny { 8 } else { 20 },
            think_time: SimDuration::from_millis(1),
            service_jitter: SimDuration::from_millis(2),
            slo: SimDuration::from_millis(25),
            seed: cfg.seed,
        },
        time_limit: SimTime::from_secs(if tiny { 60 } else { 180 }),
    }
}

/// Run one generator under one switch configuration and collect everything.
fn run_queue<M: TrafficModel>(
    cfg: &ScenarioConfig,
    sizes: &WorkloadSizes,
    queue: WlQueue,
    model: M,
) -> (QueueResult, M) {
    // Single rack: every workload's contention is at ToR→host ports, and a
    // one-switch cluster keeps the pathology attributable to one queue.
    let spec = ClusterSpec::single_rack(
        sizes.hosts,
        cfg.host_link,
        queue.qdisc(cfg, SimDuration::from_micros(500)),
        cfg.seed,
    );
    let tcp = TcpConfig {
        recv_wnd: 128 << 10,
        sack: false,
        ..TcpConfig::with_ecn(Transport::Dctcp.ecn_mode())
    };
    // Idle-path FCT model: two host links each way plus one full-size
    // serialisation, against the host line rate.
    let ideal = IdealFct {
        base_rtt: cfg.host_link.delay.saturating_mul(4) + cfg.host_link.tx_time(1_526),
        bottleneck_bps: cfg.host_link.rate_bps,
    };
    let app = WorkloadApp::new(model, tcp, ideal);
    let mut sim = Simulation::new(Network::new(spec), app);
    sim.time_limit = sizes.time_limit;
    let report = sim.run();

    let fct = sim.app.fct_summary();
    let coflows = sim.app.coflow_summary();
    let stats = sim.net.port_stats().total;
    let senders = sim.net.sender_stats_total();
    let end_s = report.end_time.as_secs_f64();
    let result = QueueResult {
        queue: queue.label(),
        completed: report.app_done,
        goodput_bps: if end_s > 0.0 {
            fct.all.bytes as f64 * 8.0 / end_s
        } else {
            0.0
        },
        end_time_s: end_s,
        fct,
        coflows,
        rpc: None,
        acks_early_dropped: stats.dropped_early.get(PacketKind::PureAck),
        handshake_early_dropped: stats.dropped_early.get(PacketKind::Syn)
            + stats.dropped_early.get(PacketKind::SynAck),
        data_marked: stats.marked.get(PacketKind::Data),
        timeouts: senders.timeouts,
        syn_retransmits: senders.syn_retransmits,
    };
    (result, sim.app.model)
}

fn print_header(name: &str) {
    println!("\n== {name} ==");
    println!(
        "{:<18} {:>9} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "queue", "goodput", "fct-p50", "fct-p99", "cct-mean", "ack-drop", "syn-drop", "timeouts"
    );
}

fn print_row(r: &QueueResult) {
    println!(
        "{:<18} {:>7.1}Mb {:>8.0}us {:>8.0}us {:>8.0}us {:>10} {:>9} {:>9}{}",
        r.queue,
        r.goodput_bps / 1e6,
        r.fct.all.fct_p50_us,
        r.fct.all.fct_p99_us,
        r.coflows.cct_mean_us,
        r.acks_early_dropped,
        r.handshake_early_dropped,
        r.timeouts,
        if r.completed { "" } else { "  [TIME LIMIT]" },
    );
}

/// Evaluate one orchestrator point. For the RPC workload the SLO accounting
/// lives in the traffic model, not the sim report, so it is folded into the
/// [`QueueResult`] here — before the result is cached — rather than after.
fn eval_point(cfg: &ScenarioConfig, sz: &WorkloadSizes, key: &WlKey) -> QueueResult {
    let q = queue_from_label(&key.queue);
    match key.workload.as_str() {
        "incast" => run_queue(cfg, sz, q, Incast::new(sz.incast)).0,
        "mixed" => run_queue(cfg, sz, q, Mixed::new(sz.mixed)).0,
        "rpc" => {
            let (mut r, model) = run_queue(cfg, sz, q, Rpc::new(sz.rpc));
            r.rpc = Some(model.summary());
            r
        }
        other => panic!("unknown workload {other:?}"),
    }
}

fn main() {
    let args = cli_args();
    let cfg = args.scenario();
    let opts = args.sweep_options();
    let sz = sizes(&cfg, args.tiny);
    let suffix = if args.tiny { "_tiny" } else { "" };

    // All 12 (workload × queue) points go through the orchestrator at once:
    // parallel across `--jobs`, merged back in this canonical order, cached
    // under `results/.cache/` unless `--no-cache`.
    let keys = point_keys(&cfg, &sz);
    let (mut results, stats) = simsweep::run_points(&keys, &opts, |key| eval_point(&cfg, &sz, key));
    eprintln!(
        "[workloads] {} points executed, {} served from cache",
        stats.executed, stats.cached
    );

    let mut reports = Vec::new();
    for (wl, title) in [
        ("incast", "partition-aggregate incast"),
        ("mixed", "permutation elephants + poisson mice"),
        ("rpc", "closed-loop RPC"),
    ] {
        print_header(title);
        let configs: Vec<QueueResult> = results.drain(..QUEUES.len()).collect();
        for r in &configs {
            print_row(r);
        }
        let report = WorkloadReport {
            workload: wl.into(),
            seed: cfg.seed,
            hosts: sz.hosts,
            configs,
        };
        let path = Path::new("results").join(format!("workloads_{wl}{suffix}.json"));
        if write_json(&report, &path).is_ok() {
            eprintln!("[workloads] wrote {}", path.display());
        }
        reports.push(report);
    }
    let rpc_report = reports.pop().expect("rpc report");
    let mixed_report = reports.pop().expect("mixed report");
    let incast_report = reports.pop().expect("incast report");

    // Claim checks.
    let by_queue = |rs: &[QueueResult], q: WlQueue| -> QueueResult {
        rs.iter()
            .find(|r| r.queue == q.label())
            .expect("queue present in sweep")
            .clone()
    };
    let unprotected = WlQueue::Mimic(ProtectionMode::Default);
    let protected = WlQueue::Mimic(ProtectionMode::AckSyn);
    let inc_unprot = by_queue(&incast_report.configs, unprotected);
    let inc_prot = by_queue(&incast_report.configs, protected);
    let inc_drop = by_queue(&incast_report.configs, WlQueue::DropTail);
    let inc_mark = by_queue(&incast_report.configs, WlQueue::SimpleMarking);
    let mix_unprot = by_queue(&mixed_report.configs, unprotected);
    let mix_prot = by_queue(&mixed_report.configs, protected);
    let mix_mark = by_queue(&mixed_report.configs, WlQueue::SimpleMarking);
    let rpc_unprot = by_queue(&rpc_report.configs, unprotected);
    let rpc_prot = by_queue(&rpc_report.configs, protected);

    let claims = WorkloadClaims {
        incast_collapse_vs_protected: inc_unprot.goodput_bps / inc_prot.goodput_bps,
        incast_protected_vs_droptail: inc_prot.goodput_bps / inc_drop.goodput_bps,
        incast_marking_vs_protected: inc_mark.goodput_bps / inc_prot.goodput_bps,
        mixed_ack_drops_unprotected: mix_unprot.acks_early_dropped,
        mixed_ack_drops_protected: mix_prot.acks_early_dropped + mix_mark.acks_early_dropped,
        rpc_slo_violations_unprotected: rpc_unprot.rpc.as_ref().map_or(0, |s| s.slo_violations),
        rpc_slo_violations_protected: rpc_prot.rpc.as_ref().map_or(0, |s| s.slo_violations),
    };

    println!("\n== claim checks ==");
    let mut failed: Vec<String> = Vec::new();
    let mut check = |name: &str, pass: bool, detail: String| {
        println!(
            "  [{}] {name}: {detail}",
            if pass { "PASS" } else { "FAIL" }
        );
        if !pass {
            failed.push(name.into());
        }
    };
    check(
        "incast goodput collapses without protection",
        claims.incast_collapse_vs_protected < 0.75,
        format!(
            "red[default] / red[ack+syn] = {:.3}",
            claims.incast_collapse_vs_protected
        ),
    );
    check(
        "ACK+SYN protection restores DropTail goodput",
        claims.incast_protected_vs_droptail > 0.9,
        format!(
            "red[ack+syn] / droptail = {:.3}",
            claims.incast_protected_vs_droptail
        ),
    );
    check(
        "simple marking needs no protection heuristic",
        claims.incast_marking_vs_protected > 0.9,
        format!(
            "simple-marking / red[ack+syn] = {:.3}",
            claims.incast_marking_vs_protected
        ),
    );
    check(
        "mixed load early-drops ACKs only when unprotected",
        claims.mixed_ack_drops_unprotected > 0 && claims.mixed_ack_drops_protected == 0,
        format!(
            "unprotected {} vs protected {}",
            claims.mixed_ack_drops_unprotected, claims.mixed_ack_drops_protected
        ),
    );
    check(
        "unprotected marking inflates RPC SLO violations",
        claims.rpc_slo_violations_unprotected > claims.rpc_slo_violations_protected,
        format!(
            "unprotected {} vs protected {}",
            claims.rpc_slo_violations_unprotected, claims.rpc_slo_violations_protected
        ),
    );

    let path = Path::new("results").join(format!("workloads_claims{suffix}.json"));
    if write_json(&claims, &path).is_ok() {
        eprintln!("[workloads] wrote {}", path.display());
    }

    if !failed.is_empty() {
        eprintln!(
            "[workloads] {} claim check(s) FAILED: {}",
            failed.len(),
            failed.join("; ")
        );
        std::process::exit(1);
    }
}
