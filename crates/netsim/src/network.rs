//! The network state machine: hosts, switches, ports, routing, metrics.

use crate::link::LinkSpec;
use crate::topology::ClusterSpec;
use ecn_core::{build_qdisc, DropTail};
use netpacket::{
    EnqueueOutcome, FlowId, NodeId, Packet, PacketKind, PacketPool, PacketRef, QueueDiscipline,
    QueueStats,
};
use simevent::{SimDuration, SimTime};
use simmetrics::{LatencyHistogram, QueueSample, QueueTrace, ThroughputMeter};
use simtrace::{EventKind, TraceEvent, TraceHandle};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use tcpstack::{Receiver, Sender, TcpAgent, TcpConfig};

/// Addresses a device in the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevRef {
    /// End host by index (== `NodeId`).
    Host(usize),
    /// Switch by index: `0..racks` are ToRs, index `racks` is the core.
    Switch(usize),
}

/// The tie-break lane of a device: the entity a sharded engine would own.
/// Hosts take even lanes, switches odd; two reserved lanes at the top of the
/// `u16` range cover the non-device producers (application, sampler).
#[inline]
pub(crate) fn dev_lane(dev: DevRef) -> u16 {
    match dev {
        DevRef::Host(i) => 2 * i as u16,
        DevRef::Switch(i) => 2 * i as u16 + 1,
    }
}

/// Reserved lane for application-scheduled timers ([`Event::AppTimer`]).
pub(crate) const APP_LANE: u16 = 0xFFFF;
/// Reserved lane for the queue-trace sampler ([`Event::Sample`]).
pub(crate) const SAMPLE_LANE: u16 = 0xFFFE;

/// Simulation events.
///
/// Events carry [`PacketRef`] pool handles, not packets: a `ScheduledEvent`
/// is ~16 bytes, so calendar-bucket sifts stop memcpying ~120-byte packet
/// structs around.
#[derive(Debug)]
pub enum Event {
    /// A packet arrives at a device after crossing a link.
    Arrive {
        /// Destination device.
        dev: DevRef,
        /// Handle to the packet in the network's [`PacketPool`].
        packet: PacketRef,
    },
    /// A busy port's line went free while its queue was non-empty, so the
    /// next dequeue is due. Never scheduled for a port that goes idle
    /// uncontended — the departing packet's `Arrive` is pre-scheduled at
    /// transmission start, so an uncontended hop needs no completion event
    /// at all (the seed paid one `TxComplete` per packet per hop).
    PortFree {
        /// Transmitting device.
        dev: DevRef,
        /// Port index on that device (hosts have a single NIC, port 0).
        port: usize,
    },
    /// Check TCP timers on one host.
    HostTimers {
        /// Host index.
        host: usize,
    },
    /// Wakes the [`crate::Application`] (handled by the sim loop, not here).
    AppTimer {
        /// Opaque token chosen by the application.
        token: u64,
    },
    /// Periodic queue-trace sample.
    Sample,
}

/// One egress port: a queue discipline plus a serialising transmitter.
///
/// The transmitter is batched: it tracks only `busy_until`/`wakeup_armed`.
/// The departing packet's `Arrive` is scheduled at transmission start (its
/// arrival instant is already known), and a `PortFree` wakeup is armed only
/// while the queue is contended. Both simulation modes share this machine —
/// [`Network::set_reference_mode`] toggles the allocation model and the
/// per-packet bookkeeping algorithms, not the link-layer event scheme.
struct Port {
    qdisc: Box<dyn QueueDiscipline + Send>,
    link: LinkSpec,
    peer: DevRef,
    /// When the current serialisation ends (ZERO = never busy).
    busy_until: SimTime,
    /// A `PortFree` event is pending for this port.
    wakeup_armed: bool,
}

impl std::fmt::Debug for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Port")
            .field("qdisc", &self.qdisc.name())
            .field("peer", &self.peer)
            .finish()
    }
}

/// A TCP endpoint living on a host.
///
/// `Sender` outweighs `Receiver` (~450 vs ~230 bytes); hosts hold a handful
/// of endpoint slots driven by `&mut` on the per-packet path, so the inline
/// layout beats boxing the large variant — the wasted bytes per `Rx` slot
/// are cheaper than an extra pointer chase per delivered segment.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Endpoint {
    Tx(Sender),
    Rx(Receiver),
}

impl Endpoint {
    fn agent(&mut self) -> &mut dyn TcpAgent {
        match self {
            Endpoint::Tx(s) => s,
            Endpoint::Rx(r) => r,
        }
    }
    fn next_deadline(&self) -> Option<SimTime> {
        match self {
            Endpoint::Tx(s) => s.next_deadline(),
            Endpoint::Rx(r) => r.next_deadline(),
        }
    }
}

#[derive(Debug)]
struct Host {
    nic: Port,
    /// Flow-id column of the endpoint table, parallel to `eps`: slot `i`'s
    /// endpoint serves flow `ep_flow[i]`. Struct-of-arrays split so the hot
    /// loops touch only the column they need — the per-ACK deadline re-arm
    /// and outbox drains walk `eps` without dragging flow ids through the
    /// cache, and completion checks read `ep_flow` without the endpoint.
    /// Slots are appended in flow-creation order and never removed, so slot
    /// order equals ascending [`FlowId`] order — the same iteration order
    /// the original `BTreeMap<FlowId, Endpoint>` provided.
    ep_flow: Vec<FlowId>,
    /// Endpoint column, parallel to `ep_flow`.
    eps: Vec<Endpoint>,
    /// Flow → endpoint slot, the seed implementation's lookup structure.
    /// Maintained for [`Network::set_reference_mode`]; the fast path never
    /// reads it.
    by_flow: BTreeMap<FlowId, u32>,
    /// Lazy min-heap of `(deadline, endpoint slot)` candidates. An entry is
    /// pushed every time an endpoint is driven and reports a deadline; stale
    /// entries (the endpoint's deadline has since moved or cleared) are
    /// discarded at query time. Invariant: whenever an endpoint currently
    /// reports `next_deadline() == Some(d)`, an entry `(d, slot)` is in the
    /// heap — so the valid head is exactly the minimum over all endpoints,
    /// without the O(endpoints) scan the original re-arm code did.
    deadlines: BinaryHeap<Reverse<(SimTime, u32)>>,
    timer_scheduled: Option<SimTime>,
}

/// Where a flow's two endpoints live: host index plus endpoint-slot index on
/// that host. Indexed by `FlowId - 1` (ids are dense, starting at 1).
#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    src_host: u32,
    tx_idx: u32,
    dst_host: u32,
    rx_idx: u32,
}

/// Dense index for a flow id: ids start at 1, slabs at 0.
#[inline]
fn flow_index(f: FlowId) -> Option<usize> {
    (f.0 as usize).checked_sub(1)
}

#[derive(Debug)]
struct Switch {
    ports: Vec<Port>,
    /// `route[dst_host]` = egress port index.
    route: Vec<usize>,
}

/// Book-keeping for one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Flow id.
    pub flow: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Bytes the flow transfers.
    pub bytes: u64,
    /// When the flow was started.
    pub started: SimTime,
    /// When all bytes were acknowledged, if finished.
    pub completed: Option<SimTime>,
}

/// Aggregated per-port statistics for reporting.
#[derive(Debug, Clone)]
pub struct PortStatsReport {
    /// Sum over every switch egress port.
    pub total: QueueStats,
    /// Per-port stats, labelled `"<switch>/<port>: <qdisc name>"`.
    pub ports: Vec<(String, QueueStats)>,
}

/// The simulated cluster.
#[derive(Debug)]
pub struct Network {
    spec: ClusterSpec,
    hosts: Vec<Host>,
    switches: Vec<Switch>,
    /// Flow records, indexed by `FlowId - 1` (ids are dense, allocated here).
    flows: Vec<FlowRecord>,
    /// Endpoint locations, parallel to `flows`.
    flow_slots: Vec<FlowSlot>,
    /// Events generated since the last drain, each tagged with the lane of
    /// the *producing* entity ([`dev_lane`], or a reserved lane). The sim
    /// loop packs producer + destination into the tie-break lane so that
    /// under [`simevent::TieBreak::Permuted`] same-instant events at one
    /// destination keep a canonical per-source order — the deterministic
    /// merge a sharded engine performs on its inbound channels.
    pending: Vec<(SimTime, u16, Event)>,
    /// The packet arena every [`Event::Arrive`] and port queue indexes into.
    /// In reference mode its storage is one `Box` per packet (seed model).
    pool: PacketPool,
    /// Scratch buffer reused by [`Network::flush_host`] so the per-packet hot
    /// path does not allocate.
    flush_buf: Vec<Packet>,
    /// Scratch buffer reused by [`Network::host_timers`] for the matured
    /// endpoint set — the seed allocated a fresh `Vec` per timer event.
    due_buf: Vec<u32>,
    /// When set, per-packet processing uses the seed implementation's
    /// algorithms (map lookups, full-endpoint-scan flushes). See
    /// [`Network::set_reference_mode`].
    reference_mode: bool,
    completed: Vec<FlowId>,
    latency_all: LatencyHistogram,
    latency_data: LatencyHistogram,
    latency_ack: LatencyHistogram,
    throughput: ThroughputMeter,
    trace: Option<TraceState>,
    /// Per-packet lifecycle trace handle (disabled tier by default); fanned
    /// out to every qdisc and sender by [`Network::set_trace`].
    pkt_trace: TraceHandle,
    /// `simtrace` queue ids for each host NIC, parallel to `hosts`.
    host_qids: Vec<u32>,
    /// `simtrace` queue ids per switch port, parallel to `switches[..].ports`.
    switch_qids: Vec<Vec<u32>>,
    /// Packets that arrived for an unknown flow (should stay zero).
    orphan_packets: u64,
}

#[derive(Debug)]
struct TraceState {
    switch: usize,
    port: usize,
    interval: SimDuration,
    trace: QueueTrace,
    armed: bool,
}

/// Batched fast path: dequeue the next packet from a free port and schedule
/// its `Arrive` directly — the arrival instant (`now + tx + delay`) is fully
/// determined at transmission start, so no per-packet completion event is
/// needed. A single `PortFree` wakeup is armed only when the queue is still
/// contended after the dequeue; an uncontended port costs one event per
/// packet per hop instead of the seed's two.
///
/// Dequeue timestamps are identical to the seed scheme: the head packet of a
/// busy period is dequeued at its enqueue instant, every follow-up at the
/// previous packet's completion instant (`PortFree` fires exactly where the
/// seed's per-packet `TxComplete` did).
fn start_tx_batched(
    port: &mut Port,
    dev: DevRef,
    idx: usize,
    now: SimTime,
    pending: &mut Vec<(SimTime, u16, Event)>,
    pool: &mut PacketPool,
) {
    debug_assert!(now >= port.busy_until, "port serviced while line busy");
    debug_assert!(!port.wakeup_armed, "duplicate port service");
    let Some(r) = port.qdisc.dequeue_ref(pool, now) else {
        return;
    };
    #[cfg(debug_assertions)]
    port.qdisc.debug_verify_conservation();
    let tx = port.link.tx_time(pool.get(r).wire_bytes() as u64);
    let done = now + tx;
    port.busy_until = done;
    pending.push((
        done + port.link.delay,
        dev_lane(dev),
        Event::Arrive {
            dev: port.peer,
            packet: r,
        },
    ));
    if !port.qdisc.is_empty() {
        port.wakeup_armed = true;
        pending.push((done, dev_lane(dev), Event::PortFree { dev, port: idx }));
    }
}

fn enqueue_and_kick(
    port: &mut Port,
    dev: DevRef,
    idx: usize,
    packet: PacketRef,
    now: SimTime,
    pending: &mut Vec<(SimTime, u16, Event)>,
    pool: &mut PacketPool,
) -> EnqueueOutcome {
    let out = port.qdisc.enqueue_ref(packet, pool, now);
    #[cfg(debug_assertions)]
    port.qdisc.debug_verify_conservation();
    if now >= port.busy_until {
        if !port.wakeup_armed {
            // Idle port: serve immediately. (With a wakeup armed the line
            // went free at exactly `now` and the pending `PortFree` at this
            // instant will serve the queue — serving here too would
            // double-dequeue.)
            start_tx_batched(port, dev, idx, now, pending, pool);
        }
    } else if !port.wakeup_armed && !port.qdisc.is_empty() {
        // Busy line, nothing was queued at transmission start: arm the
        // wakeup that start_tx_batched skipped.
        port.wakeup_armed = true;
        pending.push((
            port.busy_until,
            dev_lane(dev),
            Event::PortFree { dev, port: idx },
        ));
    }
    out
}

impl Network {
    /// Build the cluster described by `spec`.
    pub fn new(spec: ClusterSpec) -> Self {
        spec.validate();
        let n = spec.total_hosts() as usize;
        let racks = spec.racks as usize;
        let rng = simevent::SimRng::new(spec.seed);
        let mut seed_counter = 0u64;
        let mut next_seed = || {
            seed_counter += 1;
            rng.fork(seed_counter).seed()
        };

        let mut hosts = Vec::with_capacity(n);
        for h in 0..n {
            hosts.push(Host {
                nic: Port {
                    qdisc: Box::new(DropTail::new(spec.host_buffer_packets)),
                    link: spec.host_link,
                    peer: DevRef::Switch(spec.rack_of(h as u32) as usize),
                    busy_until: SimTime::ZERO,
                    wakeup_armed: false,
                },
                ep_flow: Vec::new(),
                eps: Vec::new(),
                by_flow: BTreeMap::new(),
                deadlines: BinaryHeap::new(),
                timer_scheduled: None,
            });
        }

        let mut switches = Vec::new();
        // ToR switches.
        for r in 0..racks {
            let mut ports = Vec::new();
            let mut route = vec![usize::MAX; n];
            for local in 0..spec.hosts_per_rack as usize {
                let h = r * spec.hosts_per_rack as usize + local;
                route[h] = ports.len();
                ports.push(Port {
                    qdisc: build_qdisc(&spec.switch_qdisc, next_seed()),
                    link: spec.host_link,
                    peer: DevRef::Host(h),
                    busy_until: SimTime::ZERO,
                    wakeup_armed: false,
                });
            }
            if racks > 1 {
                let up = ports.len();
                ports.push(Port {
                    qdisc: build_qdisc(&spec.switch_qdisc, next_seed()),
                    link: spec.uplink,
                    peer: DevRef::Switch(racks), // core
                    busy_until: SimTime::ZERO,
                    wakeup_armed: false,
                });
                for (h, slot) in route.iter_mut().enumerate() {
                    if spec.rack_of(h as u32) as usize != r {
                        *slot = up;
                    }
                }
            }
            switches.push(Switch { ports, route });
        }
        // Core switch.
        if racks > 1 {
            let mut ports = Vec::new();
            let mut route = vec![usize::MAX; n];
            for r in 0..racks {
                let pidx = ports.len();
                ports.push(Port {
                    qdisc: build_qdisc(&spec.switch_qdisc, next_seed()),
                    link: spec.uplink,
                    peer: DevRef::Switch(r),
                    busy_until: SimTime::ZERO,
                    wakeup_armed: false,
                });
                for (h, slot) in route.iter_mut().enumerate() {
                    if spec.rack_of(h as u32) as usize == r {
                        *slot = pidx;
                    }
                }
            }
            switches.push(Switch { ports, route });
        }

        Network {
            spec,
            hosts,
            switches,
            flows: Vec::new(),
            flow_slots: Vec::new(),
            pending: Vec::new(),
            pool: PacketPool::new(),
            flush_buf: Vec::new(),
            due_buf: Vec::new(),
            reference_mode: false,
            completed: Vec::new(),
            latency_all: LatencyHistogram::new(),
            latency_data: LatencyHistogram::new(),
            latency_ack: LatencyHistogram::new(),
            throughput: ThroughputMeter::new(),
            trace: None,
            pkt_trace: TraceHandle::null(),
            host_qids: Vec::new(),
            switch_qids: Vec::new(),
            orphan_packets: 0,
        }
    }

    /// Attach a packet-lifecycle trace to the whole cluster: registers every
    /// host NIC and switch egress port with the sink (stable ids in
    /// host-then-switch construction order), hands the handle to every queue
    /// discipline and every TCP sender (existing and, via
    /// [`Network::add_flow`], future ones), and makes [`Network::sample`]
    /// emit [`EventKind::QueueDepth`] events for the traced port.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.host_qids.clear();
        self.switch_qids.clear();
        for (h, host) in self.hosts.iter_mut().enumerate() {
            let id = trace.register_queue(&format!("host{h}/nic: {}", host.nic.qdisc.name()));
            host.nic.qdisc.set_trace(trace.clone(), id);
            self.host_qids.push(id);
            for ep in &mut host.eps {
                if let Endpoint::Tx(s) = ep {
                    s.set_trace(trace.clone());
                }
            }
        }
        for (si, sw) in self.switches.iter_mut().enumerate() {
            let mut qids = Vec::with_capacity(sw.ports.len());
            for (pi, port) in sw.ports.iter_mut().enumerate() {
                let id = trace.register_queue(&format!("sw{si}/p{pi}: {}", port.qdisc.name()));
                port.qdisc.set_trace(trace.clone(), id);
                qids.push(id);
            }
            self.switch_qids.push(qids);
        }
        self.pkt_trace = trace;
    }

    /// The cluster spec this network was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Start a `bytes`-long TCP transfer from `src` to `dst`.
    ///
    /// The receiver is pre-attached (as in NS-2); the SYN still travels and
    /// can be dropped.
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        cfg: TcpConfig,
        now: SimTime,
    ) -> FlowId {
        assert!(src != dst, "flow endpoints must differ");
        assert!((src.0 as usize) < self.hosts.len() && (dst.0 as usize) < self.hosts.len());
        let flow = FlowId(self.flows.len() as u64 + 1);
        let mut sender = Sender::new(flow, src, dst, bytes, cfg.clone(), now);
        sender.set_trace(self.pkt_trace.clone());
        let receiver = Receiver::new(flow, dst, src, cfg);

        let dst_h = &mut self.hosts[dst.0 as usize];
        let rx_idx = dst_h.eps.len() as u32;
        dst_h.ep_flow.push(flow);
        dst_h.eps.push(Endpoint::Rx(receiver));
        dst_h.by_flow.insert(flow, rx_idx);
        // Keep the deadline-heap invariant without flushing the receiving
        // host (the original code did not flush it either).
        if let Some(d) = dst_h.eps[rx_idx as usize].next_deadline() {
            dst_h.deadlines.push(Reverse((d, rx_idx)));
        }

        let src_h = &mut self.hosts[src.0 as usize];
        let tx_idx = src_h.eps.len() as u32;
        src_h.ep_flow.push(flow);
        src_h.eps.push(Endpoint::Tx(sender));
        src_h.by_flow.insert(flow, tx_idx);

        self.flow_slots.push(FlowSlot {
            src_host: src.0,
            tx_idx,
            dst_host: dst.0,
            rx_idx,
        });
        self.flows.push(FlowRecord {
            flow,
            src,
            dst,
            bytes,
            started: now,
            completed: None,
        });
        self.flush_host(src.0 as usize, now, &[tx_idx]);
        flow
    }

    /// Ask the sim loop to deliver an [`Event::AppTimer`] at `at`.
    pub fn schedule_app_timer(&mut self, at: SimTime, token: u64) {
        self.pending.push((at, APP_LANE, Event::AppTimer { token }));
    }

    /// Record queue-occupancy samples of one switch port every `interval`.
    pub fn enable_queue_trace(
        &mut self,
        switch: usize,
        port: usize,
        interval: SimDuration,
        max_samples: usize,
    ) {
        assert!(switch < self.switches.len() && port < self.switches[switch].ports.len());
        assert!(interval > SimDuration::ZERO);
        self.trace = Some(TraceState {
            switch,
            port,
            interval,
            trace: QueueTrace::new(max_samples),
            armed: false,
        });
        self.pending
            .push((SimTime::ZERO, SAMPLE_LANE, Event::Sample));
    }

    /// The recorded queue trace, if tracing was enabled.
    pub fn queue_trace(&self) -> Option<&QueueTrace> {
        self.trace.as_ref().map(|t| &t.trace)
    }

    // ----- event handling ---------------------------------------------------

    /// Process one event. `AppTimer` events must be routed to the application
    /// by the caller, not here.
    pub fn handle(&mut self, ev: Event, now: SimTime) {
        match ev {
            Event::Arrive { dev, packet } => match dev {
                DevRef::Switch(s) => self.arrive_at_switch(s, packet, now),
                DevRef::Host(h) => self.arrive_at_host(h, packet, now),
            },
            Event::PortFree { dev, port } => self.port_free(dev, port, now),
            Event::HostTimers { host } => self.host_timers(host, now),
            Event::Sample => self.sample(now),
            Event::AppTimer { .. } => {
                unreachable!("AppTimer must be handled by the simulation loop")
            }
        }
    }

    fn arrive_at_switch(&mut self, s: usize, packet: PacketRef, now: SimTime) {
        let dst = self.pool.get(packet).dst;
        let sw = &mut self.switches[s];
        let out = sw.route[dst.0 as usize];
        debug_assert!(out != usize::MAX, "no route from switch {s} to {dst}");
        let port = &mut sw.ports[out];
        let _ = enqueue_and_kick(
            port,
            DevRef::Switch(s),
            out,
            packet,
            now,
            &mut self.pending,
            &mut self.pool,
        );
    }

    fn arrive_at_host(&mut self, h: usize, r: PacketRef, now: SimTime) {
        // The packet leaves the pool here: delivery is the end of its life on
        // the wire, and the endpoint only borrows it (`on_segment(&packet)`).
        let packet = self.pool.take(r);
        // End-to-end latency accounting for every delivered packet.
        let lat = now.since(packet.sent_at);
        self.latency_all.record(lat);
        match PacketKind::of(&packet) {
            PacketKind::Data => self.latency_data.record(lat),
            PacketKind::PureAck => self.latency_ack.record(lat),
            _ => {}
        }

        // O(1) endpoint lookup: flow id -> slab slot -> endpoint index.
        // (Reference mode keeps the seed's per-packet map lookup instead.)
        let idx = if self.reference_mode {
            self.hosts[h].by_flow.get(&packet.flow).copied()
        } else {
            flow_index(packet.flow)
                .and_then(|i| self.flow_slots.get(i))
                .and_then(|slot| {
                    if slot.dst_host == h as u32 {
                        Some(slot.rx_idx)
                    } else if slot.src_host == h as u32 {
                        Some(slot.tx_idx)
                    } else {
                        None
                    }
                })
        };
        let Some(idx) = idx else {
            self.orphan_packets += 1;
            return;
        };
        let ep = &mut self.hosts[h].eps[idx as usize];
        let goodput_before = match ep {
            Endpoint::Rx(rx) => Some(rx.bytes_received()),
            Endpoint::Tx(_) => None,
        };
        ep.agent().on_segment(&packet, now);
        if let (Some(before), Endpoint::Rx(rx)) = (goodput_before, &*ep) {
            let delta = rx.bytes_received().saturating_sub(before);
            self.throughput.record(NodeId(h as u32), delta, now);
        }
        self.flush_host(h, now, &[idx]);
    }

    /// Batched fast path: a contended port's line went free. Clear the armed
    /// wakeup and serve the next queued packet.
    fn port_free(&mut self, dev: DevRef, port_idx: usize, now: SimTime) {
        let port = match dev {
            DevRef::Host(h) => &mut self.hosts[h].nic,
            DevRef::Switch(s) => &mut self.switches[s].ports[port_idx],
        };
        debug_assert!(port.wakeup_armed, "PortFree on an unarmed port");
        port.wakeup_armed = false;
        start_tx_batched(port, dev, port_idx, now, &mut self.pending, &mut self.pool);
    }

    fn host_timers(&mut self, h: usize, now: SimTime) {
        if self.reference_mode {
            self.host_timers_reference(h, now);
            return;
        }
        // Reuse the scratch buffer across timer events (the seed allocated a
        // fresh `Vec` here every time).
        let mut due = std::mem::take(&mut self.due_buf);
        debug_assert!(due.is_empty());
        let host = &mut self.hosts[h];
        host.timer_scheduled = None;
        // Pop matured deadline candidates; entries are lazily invalidated, so
        // each candidate endpoint's actual deadline is re-checked. Any
        // endpoint that is genuinely due has a matured entry here (the heap
        // always holds an entry at the current deadline), so this finds the
        // same set the original full endpoint scan did.
        while let Some(&Reverse((d, idx))) = host.deadlines.peek() {
            if d > now {
                break;
            }
            host.deadlines.pop();
            let actual = host.eps[idx as usize].next_deadline();
            if actual.is_some_and(|a| a <= now) {
                due.push(idx);
            }
        }
        // Slot order equals FlowId order, matching the original firing order.
        due.sort_unstable();
        due.dedup();
        for &idx in &due {
            host.eps[idx as usize].agent().on_timer(now);
        }
        self.flush_host(h, now, &due);
        due.clear();
        self.due_buf = due;
    }

    fn sample(&mut self, now: SimTime) {
        let Some(ts) = self.trace.as_mut() else {
            return;
        };
        let port = &self.switches[ts.switch].ports[ts.port];
        let sample = QueueSample {
            at: now,
            len_packets: port.qdisc.len_packets(),
            len_bytes: port.qdisc.len_bytes(),
            by_kind: port.qdisc.snapshot_kinds(),
        };
        if self.pkt_trace.is_enabled() {
            if let Some(&qid) = self
                .switch_qids
                .get(ts.switch)
                .and_then(|ports| ports.get(ts.port))
            {
                let mut ev = TraceEvent::new(EventKind::QueueDepth, now);
                ev.queue = qid;
                ev.a = sample.len_packets;
                ev.b = sample.len_bytes;
                self.pkt_trace.emit(ev);
            }
        }
        ts.trace.record(sample);
        ts.armed = true;
        if (ts.trace.samples().len()) < usize::MAX {
            // Keep sampling; the trace itself caps retained samples.
            self.pending
                .push((now + ts.interval, SAMPLE_LANE, Event::Sample));
        }
    }

    /// Drain the touched endpoints' outboxes into the host's NIC, update flow
    /// completion, and re-arm the host's timer event.
    ///
    /// `touched` lists the endpoint slots driven since the last flush (in
    /// ascending slot order). Untouched endpoints were drained when *they*
    /// were last driven, and enqueueing to the NIC never feeds an endpoint,
    /// so restricting the flush to the touched slots is behaviour-identical
    /// to the original drain-everything loop — without the O(endpoints) scan
    /// on every delivered packet.
    fn flush_host(&mut self, h: usize, now: SimTime, touched: &[u32]) {
        if self.reference_mode {
            self.flush_host_reference(h, now);
            return;
        }
        let Network {
            hosts,
            flows,
            pending,
            completed,
            flush_buf,
            pool,
            ..
        } = self;
        let host = &mut hosts[h];
        debug_assert!(flush_buf.is_empty());
        for &idx in touched {
            host.eps[idx as usize].agent().drain_outbox_into(flush_buf);
        }
        for pkt in flush_buf.drain(..) {
            let r = pool.insert(pkt);
            let _ = enqueue_and_kick(&mut host.nic, DevRef::Host(h), 0, r, now, pending, pool);
        }
        // Completion checks and deadline-heap maintenance for the touched
        // endpoints (completion can only transition on a driven endpoint).
        for &idx in touched {
            if let Endpoint::Tx(s) = &host.eps[idx as usize] {
                if s.is_complete() {
                    let flow = host.ep_flow[idx as usize];
                    let rec = &mut flows[flow_index(flow).expect("flow id 0 is invalid")];
                    if rec.completed.is_none() {
                        rec.completed = Some(s.completed_at().unwrap_or(now));
                        completed.push(flow);
                    }
                }
            }
            if let Some(d) = host.eps[idx as usize].next_deadline() {
                host.deadlines.push(Reverse((d, idx)));
            }
        }
        // Re-arm the host timer from the lazy deadline heap: discard stale
        // entries until the head matches its endpoint's actual deadline. That
        // head is the true minimum over all endpoints (every current deadline
        // has an entry).
        let next = loop {
            let Some(&Reverse((d, idx))) = host.deadlines.peek() else {
                break None;
            };
            if host.eps[idx as usize].next_deadline() == Some(d) {
                break Some(d);
            }
            host.deadlines.pop();
        };
        if let Some(d) = next {
            let d = d.max(now);
            if host.timer_scheduled.is_none_or(|t| d < t) {
                host.timer_scheduled = Some(d);
                pending.push((d, dev_lane(DevRef::Host(h)), Event::HostTimers { host: h }));
            }
        }
    }

    // ----- reference (seed) per-packet path ---------------------------------

    /// Switch per-packet processing to the seed implementation's algorithms:
    /// `BTreeMap` endpoint lookups, drain-every-endpoint flushes with a fresh
    /// allocation per flush, and full-scan timer re-arms. Kept — like
    /// `simevent::EventQueue` — as the measured "before" of the perf report
    /// (`BENCH_1.json`); both modes produce identical simulation results.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference_mode = on;
        // The seed also boxed every packet individually; mirror that in the
        // pool's storage so the allocation model matches the algorithms.
        self.pool.set_reference_mode(on);
    }

    /// Seed implementation of [`Network::host_timers`]: scan every endpoint
    /// for matured deadlines.
    fn host_timers_reference(&mut self, h: usize, now: SimTime) {
        self.hosts[h].timer_scheduled = None;
        let host = &self.hosts[h];
        let due: Vec<FlowId> = host
            .eps
            .iter()
            .zip(host.ep_flow.iter())
            .filter(|(ep, _)| ep.next_deadline().is_some_and(|d| d <= now))
            .map(|(_, &f)| f)
            .collect();
        for f in due {
            if let Some(&idx) = self.hosts[h].by_flow.get(&f) {
                self.hosts[h].eps[idx as usize].agent().on_timer(now);
            }
        }
        self.flush_host_reference(h, now);
    }

    /// Seed implementation of [`Network::flush_host`]: drain every endpoint's
    /// outbox (allocating per pass), scan every sender for completion, and
    /// re-arm from a full min-scan over all endpoint deadlines.
    fn flush_host_reference(&mut self, h: usize, now: SimTime) {
        loop {
            let host = &mut self.hosts[h];
            let mut out: Vec<Packet> = Vec::new();
            for ep in &mut host.eps {
                out.append(&mut ep.agent().take_outbox());
            }
            if out.is_empty() {
                break;
            }
            for pkt in out {
                let r = self.pool.insert(pkt);
                let _ = enqueue_and_kick(
                    &mut self.hosts[h].nic,
                    DevRef::Host(h),
                    0,
                    r,
                    now,
                    &mut self.pending,
                    &mut self.pool,
                );
            }
        }
        // Completion checks for senders on this host.
        let host = &self.hosts[h];
        let mut newly_done = Vec::new();
        for (ep, &flow) in host.eps.iter().zip(host.ep_flow.iter()) {
            if let Endpoint::Tx(s) = ep {
                if s.is_complete() {
                    if let Some(rec) = flow_index(flow).and_then(|i| self.flows.get(i)) {
                        if rec.completed.is_none() {
                            newly_done.push((flow, s.completed_at().unwrap_or(now)));
                        }
                    }
                }
            }
        }
        for (f, at) in newly_done {
            if let Some(rec) = flow_index(f).and_then(|i| self.flows.get_mut(i)) {
                rec.completed = Some(at);
            }
            self.completed.push(f);
        }
        // Re-arm the host timer from a full scan.
        let host = &mut self.hosts[h];
        let next = host.eps.iter().filter_map(|ep| ep.next_deadline()).min();
        if let Some(d) = next {
            let d = d.max(now);
            if host.timer_scheduled.is_none_or(|t| d < t) {
                host.timer_scheduled = Some(d);
                self.pending
                    .push((d, dev_lane(DevRef::Host(h)), Event::HostTimers { host: h }));
            }
        }
    }

    // ----- draining by the sim loop -----------------------------------------

    /// Take the events generated since the last call.
    pub fn take_pending(&mut self) -> Vec<(SimTime, u16, Event)> {
        std::mem::take(&mut self.pending)
    }

    /// Like [`Network::take_pending`], but swaps the pending buffer with
    /// `buf` (which must be empty) so the event loop can reuse one allocation
    /// for the lifetime of the run instead of allocating per event.
    pub fn swap_pending(&mut self, buf: &mut Vec<(SimTime, u16, Event)>) {
        debug_assert!(buf.is_empty(), "swap_pending requires an empty buffer");
        std::mem::swap(&mut self.pending, buf);
    }

    /// Number of hosts in the cluster.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Mark the current end of the pending-event buffer, for
    /// [`Network::tag_new_app_timers`]. Used by application combinators.
    pub fn take_pending_token_snapshot(&self) -> usize {
        self.pending.len()
    }

    /// OR `bit` into the token of every [`Event::AppTimer`] pushed since the
    /// snapshot — how [`crate::PairApp`] namespaces its secondary
    /// application's timers.
    pub fn tag_new_app_timers(&mut self, since: usize, bit: u64) {
        for (_, _, ev) in self.pending.iter_mut().skip(since) {
            if let Event::AppTimer { token } = ev {
                *token |= bit;
            }
        }
    }

    /// Take the flows completed since the last call.
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.completed)
    }

    // ----- metrics & introspection ------------------------------------------

    /// Per-packet end-to-end latency over all delivered packets (Fig. 4).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency_all
    }

    /// Latency of data segments only.
    pub fn latency_data(&self) -> &LatencyHistogram {
        &self.latency_data
    }

    /// Latency of pure ACKs only.
    pub fn latency_acks(&self) -> &LatencyHistogram {
        &self.latency_ack
    }

    /// Goodput accounting (Fig. 3).
    pub fn throughput(&self) -> &ThroughputMeter {
        &self.throughput
    }

    /// All flow records, in ascending [`FlowId`] order.
    pub fn flows(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.iter()
    }

    /// One flow record.
    pub fn flow(&self, f: FlowId) -> Option<&FlowRecord> {
        flow_index(f).and_then(|i| self.flows.get(i))
    }

    /// Number of completed flows.
    pub fn completed_flows(&self) -> usize {
        self.flows.iter().filter(|r| r.completed.is_some()).count()
    }

    /// True when every started flow has completed.
    pub fn all_flows_complete(&self) -> bool {
        self.flows.iter().all(|r| r.completed.is_some())
    }

    /// Latest flow completion time, if all are complete.
    pub fn last_completion(&self) -> Option<SimTime> {
        if !self.all_flows_complete() || self.flows.is_empty() {
            return None;
        }
        self.flows.iter().filter_map(|r| r.completed).max()
    }

    /// Packets delivered to hosts with no matching endpoint (should be zero).
    pub fn orphan_packets(&self) -> u64 {
        self.orphan_packets
    }

    /// Packet-pool allocation counters (inserts, heap allocations, high-water
    /// occupancy) — the perf harness's alloc accounting.
    pub fn pool_stats(&self) -> netpacket::PoolStats {
        self.pool.stats()
    }

    /// Aggregate switch-port queue statistics (drop/mark composition — the
    /// quantitative core of the paper's Fig. 1 argument).
    pub fn port_stats(&self) -> PortStatsReport {
        let mut total = QueueStats::default();
        let mut ports = Vec::new();
        for (si, sw) in self.switches.iter().enumerate() {
            for (pi, port) in sw.ports.iter().enumerate() {
                let s = *port.qdisc.stats();
                merge_stats(&mut total, &s);
                ports.push((format!("sw{si}/p{pi}: {}", port.qdisc.name()), s));
            }
        }
        PortStatsReport { total, ports }
    }

    /// Per-sender transport statistics, aggregated.
    pub fn sender_stats_total(&self) -> tcpstack::SenderStats {
        let mut agg = tcpstack::SenderStats::default();
        for host in &self.hosts {
            for ep in &host.eps {
                if let Endpoint::Tx(s) = ep {
                    let st = s.stats();
                    agg.data_segments_sent += st.data_segments_sent;
                    agg.retransmits += st.retransmits;
                    agg.fast_retransmits += st.fast_retransmits;
                    agg.timeouts += st.timeouts;
                    agg.syn_retransmits += st.syn_retransmits;
                    agg.ece_acks += st.ece_acks;
                    agg.ecn_reductions += st.ecn_reductions;
                    agg.cc_fallbacks += st.cc_fallbacks;
                }
            }
        }
        agg
    }

    /// Per-receiver transport statistics, aggregated.
    pub fn receiver_stats_total(&self) -> tcpstack::ReceiverStats {
        let mut agg = tcpstack::ReceiverStats::default();
        for host in &self.hosts {
            for ep in &host.eps {
                if let Endpoint::Rx(r) = ep {
                    let st = r.stats();
                    agg.segments_received += st.segments_received;
                    agg.ce_received += st.ce_received;
                    agg.acks_sent += st.acks_sent;
                    agg.ece_acks_sent += st.ece_acks_sent;
                    agg.syn_acks_sent += st.syn_acks_sent;
                }
            }
        }
        agg
    }

    /// Sum of application bytes received across all receivers.
    pub fn total_bytes_received(&self) -> u64 {
        self.hosts
            .iter()
            .flat_map(|h| h.eps.iter())
            .map(|ep| match ep {
                Endpoint::Rx(r) => r.bytes_received(),
                Endpoint::Tx(_) => 0,
            })
            .sum()
    }
}

fn merge_stats(into: &mut QueueStats, from: &QueueStats) {
    for k in PacketKind::ALL {
        into.enqueued.0[k.index()] += from.enqueued.get(k);
        into.marked.0[k.index()] += from.marked.get(k);
        into.dropped_early.0[k.index()] += from.dropped_early.get(k);
        into.dropped_full.0[k.index()] += from.dropped_full.get(k);
        into.dequeued.0[k.index()] += from.dequeued.get(k);
    }
    into.bytes_enqueued += from.bytes_enqueued;
    into.bytes_dequeued += from.bytes_dequeued;
    into.max_len_packets = into.max_len_packets.max(from.max_len_packets);
    into.max_len_bytes = into.max_len_bytes.max(from.max_len_bytes);
}
