//! Shape tests of the paper's headline claims at test scale.
//!
//! These assert the *orderings* the paper reports (who wins, what gets
//! dropped), not absolute magnitudes — the full-scale numbers live in
//! EXPERIMENTS.md and come from `cargo run --release -p experiments --bin
//! run_all`.

use experiments::scenario::{
    run_scenario, BufferDepth, QueueKind, RunMetrics, ScenarioConfig, Transport,
};
use hadoop_ecn::prelude::*;

fn cfg() -> ScenarioConfig {
    // Tiny jobs are one RTO away from noise; average a few seeds.
    ScenarioConfig {
        seed_count: 3,
        ..ScenarioConfig::tiny()
    }
}

fn point(t: Transport, q: QueueKind, d: BufferDepth, delay_us: u64) -> RunMetrics {
    let m = run_scenario(&cfg(), t, q, d, SimDuration::from_micros(delay_us));
    assert!(
        m.completed,
        "{t:?}/{q:?}/{d:?}@{delay_us}us did not complete"
    );
    m
}

/// §II-A: with a stock ECN AQM the early drops land on ACKs, never on the
/// ECT data that fills the queue.
#[test]
fn claim_ack_drops_are_the_problem() {
    let m = point(
        Transport::TcpEcn,
        QueueKind::Red(ProtectionMode::Default),
        BufferDepth::Shallow,
        100,
    );
    assert!(
        m.acks_early_dropped > 0,
        "stock RED must early-drop ACKs: {m:?}"
    );
    assert!(m.data_marked > 0, "ECT data must be CE-marked: {m:?}");
}

/// §II-B proposal 1: the protection modes eliminate exactly those drops.
#[test]
fn claim_protection_eliminates_ack_drops() {
    let default = point(
        Transport::TcpEcn,
        QueueKind::Red(ProtectionMode::Default),
        BufferDepth::Shallow,
        100,
    );
    let ece = point(
        Transport::TcpEcn,
        QueueKind::Red(ProtectionMode::EceBit),
        BufferDepth::Shallow,
        100,
    );
    let acksyn = point(
        Transport::TcpEcn,
        QueueKind::Red(ProtectionMode::AckSyn),
        BufferDepth::Shallow,
        100,
    );
    assert_eq!(acksyn.acks_early_dropped, 0, "ack+syn protects every ACK");
    assert_eq!(acksyn.handshake_early_dropped, 0);
    // ece-bit's guarantee is about the *protected kinds* — ECE-carrying ACKs
    // and the handshake — not the aggregate plain-ACK count: a protected run
    // finishes faster with a busier queue, so it can legally early-drop more
    // plain ACKs than default while still winning on runtime (the paper's
    // Fig. 2 point).
    assert_eq!(
        ece.handshake_early_dropped, 0,
        "ECN SYNs carry ECE and are protected"
    );
    assert_eq!(
        ece.syn_retransmits, 0,
        "protected handshakes never need SYN retransmission"
    );
    assert!(
        ece.runtime_s < default.runtime_s,
        "protecting ECN feedback must speed the job up ({:.3}s vs {:.3}s)",
        ece.runtime_s,
        default.runtime_s
    );
}

/// §II-B proposal 2: the true marking scheme never early-drops anything and
/// does not lose throughput against the stock AQM.
#[test]
fn claim_simple_marking_never_early_drops_and_keeps_throughput() {
    let marking = point(
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Shallow,
        100,
    );
    assert_eq!(marking.acks_early_dropped, 0);
    assert_eq!(marking.handshake_early_dropped, 0);
    let default = point(
        Transport::Dctcp,
        QueueKind::Red(ProtectionMode::Default),
        BufferDepth::Shallow,
        100,
    );
    assert!(
        marking.runtime_s <= default.runtime_s,
        "marking ({:.3}s) must not be slower than stock RED ({:.3}s)",
        marking.runtime_s,
        default.runtime_s
    );
}

/// §IV: marking cuts latency on deep buffers dramatically (bufferbloat)
/// while keeping runtime at least at DropTail level.
#[test]
fn claim_latency_reduction_on_deep_buffers() {
    let droptail = point(Transport::Tcp, QueueKind::DropTail, BufferDepth::Deep, 500);
    let marking = point(
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Deep,
        500,
    );
    assert!(
        marking.mean_latency_s * 2.0 < droptail.mean_latency_s,
        "deep-buffer latency must drop at least 2x: droptail {:.1}us vs marking {:.1}us",
        droptail.mean_latency_s * 1e6,
        marking.mean_latency_s * 1e6
    );
    assert!(
        marking.runtime_s <= droptail.runtime_s * 1.15,
        "latency win must not cost runtime: {:.3}s vs {:.3}s",
        marking.runtime_s,
        droptail.runtime_s
    );
}

/// §VI: commodity shallow-buffer switches with marking reach deep-buffer
/// DropTail throughput.
///
/// This claim is about steady-state throughput, so it needs a job long
/// enough that a single 200 ms RTO cannot double the runtime: 32 MB/node
/// instead of the tiny 4 MB.
#[test]
fn claim_shallow_marking_matches_deep_droptail() {
    let cfg = ScenarioConfig {
        input_bytes_per_node: 32_000_000,
        ..cfg()
    };
    let run = |t, q, d| {
        let m = run_scenario(&cfg, t, q, d, SimDuration::from_micros(500));
        assert!(m.completed);
        m
    };
    let deep_droptail = run(Transport::Tcp, QueueKind::DropTail, BufferDepth::Deep);
    let shallow_marking = run(
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Shallow,
    );
    assert!(
        shallow_marking.runtime_s <= deep_droptail.runtime_s * 1.35,
        "shallow+marking ({:.3}s) must be near deep droptail ({:.3}s)",
        shallow_marking.runtime_s,
        deep_droptail.runtime_s
    );
}

/// §IV: at loose target delays (threshold above the physical buffer) every
/// AQM degenerates to the DropTail baseline — the sweep's right edge.
#[test]
fn claim_loose_thresholds_converge_to_droptail() {
    let droptail = point(
        Transport::Tcp,
        QueueKind::DropTail,
        BufferDepth::Shallow,
        500,
    );
    let marking = point(
        Transport::Dctcp,
        QueueKind::SimpleMarking,
        BufferDepth::Shallow,
        5000,
    );
    let rel = (marking.runtime_s - droptail.runtime_s).abs() / droptail.runtime_s;
    assert!(
        rel < 0.25,
        "K beyond the buffer must behave like DropTail: {:.3}s vs {:.3}s",
        marking.runtime_s,
        droptail.runtime_s
    );
}
