//! Hierarchical timer wheel: an event queue specialised for the massively
//! cancelled RTO-class timer population (Varghese & Lauck, SOSP 1987).
//!
//! # Why a wheel next to the calendar queue
//!
//! The calendar queue schedules in O(1) amortised but cancels *lazily*: a
//! cancelled RTO stays physically enqueued, gets sifted through bucket heaps,
//! and pays a reap check when it finally surfaces. In the cancel-heavy regime
//! (every ACK rearms the RTO, so nearly every timer dies before firing) that
//! deferred cost dominates — BENCH_5 measured only 1.54x over the reference
//! heap. The wheel turns cancellation into an O(1) *physical* removal: each
//! slot is an unordered `Vec`, a side map records every entry's exact
//! position, and `cancel` swap-removes it, so a dead timer costs nothing at
//! pop time.
//!
//! # Structure
//!
//! Three levels of 256 slots each. Level 0 slots are `1 << shift` ns wide;
//! each higher level is 256x coarser. A level-k slot holds events whose
//! level-k slot number falls inside the currently *open* level-(k+1) slot,
//! so slot indices never wrap ambiguously: within one open parent the ring
//! index `slot & 255` is monotone in time. Opening a coarse slot drains it
//! and reinserts its events one level finer (each event cascades at most
//! `LEVELS - 1` times). Events beyond the top level's span go to an overflow
//! heap, events behind the wheel's position go to a past heap, and the
//! current level-0 slot is kept sorted in a small `ready` heap — three
//! regions that partition time exactly as the calendar queue's do:
//!
//! ```text
//! past  <  position  <=  ready  <  level-0 slots  <  level-1  <  ...  <= overflow
//! ```
//!
//! Every individual heap orders by `(time, seq)`, the regions are disjoint in
//! time, and slot drains re-sort through `ready` — so pops reproduce the
//! reference [`EventQueue`](crate::EventQueue) order bit for bit, which the
//! cross-backend proptests pin down.
//!
//! Slot width is a performance knob only: a coarser wheel batches more events
//! per `ready` refill but never changes pop order.

use crate::handle::{CancelSet, SeqHasher, TimerHandle};
use crate::queue::{QueueBackend, ScheduledEvent};
use crate::tiebreak::TieBreak;
use crate::time::SimTime;
use std::collections::{BinaryHeap, HashMap};
use std::hash::BuildHasherDefault;

/// Wheel depth. Three levels cover `256^3` level-0 slots before overflow.
const LEVELS: usize = 3;
/// log2 of the slots per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Ring mask for one level.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;

/// Default level-0 slot width: 2^13 ns ≈ 8.2 µs. RTO-class timers are
/// hundreds of µs to ms out, so they land in the wheel body (physical
/// cancellation) rather than in `ready`; the top level still spans
/// `2^(13+24)` ns ≈ 137 s, so only epoch-scale timers touch overflow.
const DEFAULT_WHEEL_SHIFT: u32 = 13;

/// Exact position of a wheel-resident event, kept per `seq` so `cancel` can
/// remove it physically in O(1).
#[derive(Debug, Clone, Copy)]
struct Loc {
    level: u8,
    slot: u8,
    pos: u32,
}

type LocMap = HashMap<u64, Loc, BuildHasherDefault<SeqHasher>>;

#[inline]
fn set_bit(map: &mut [u64; 4], i: usize) {
    map[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn clear_bit(map: &mut [u64; 4], i: usize) {
    map[i >> 6] &= !(1 << (i & 63));
}

/// First set bit at index `>= from`, if any.
fn scan_from(map: &[u64; 4], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut word = from >> 6;
    let mut bits = map[word] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word == 4 {
            return None;
        }
        bits = map[word];
    }
}

/// A deterministic event queue with O(1) physical cancellation, tuned for
/// timers that are usually cancelled before they fire. Drop-in
/// [`QueueBackend`]: same pop order as [`EventQueue`](crate::EventQueue),
/// proptest-pinned.
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// log2 of the level-0 slot width in nanoseconds.
    shift: u32,
    /// `LEVELS * SLOTS` unordered slot vectors, level-major.
    slots: Vec<Vec<ScheduledEvent<E>>>,
    /// Per-level occupancy bitmap over ring indices.
    occ: [[u64; 4]; LEVELS],
    /// Absolute (non-ring) slot number currently open at each level.
    /// Invariant: `cur[k] >> LEVEL_BITS == cur[k+1]`.
    cur: [u64; LEVELS],
    /// Virtual level-`LEVELS` slot: `cur[LEVELS-1] >> LEVEL_BITS`.
    epoch: u64,
    /// The open level-0 slot, sorted. Pops come from here (or `past`).
    ready: BinaryHeap<ScheduledEvent<E>>,
    /// Events scheduled behind the wheel position (arbitrary interleavings
    /// only; the simulation driver never does this).
    past: BinaryHeap<ScheduledEvent<E>>,
    /// Events beyond the top level's span.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    /// seq -> exact slot position, for O(1) physical cancel.
    loc: LocMap,
    /// Lazy cancellation for the heap regions (`ready`/`past`/`overflow`),
    /// where physical removal is not O(1).
    lazy: CancelSet,
    /// Reusable drain buffer so slot cascades never reallocate.
    spare: Vec<ScheduledEvent<E>>,
    live_len: usize,
    next_seq: u64,
    scheduled_total: u64,
    tie_break: TieBreak,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the default geometry (8.2 µs level-0 slots).
    pub fn new() -> Self {
        Self::with_shift(DEFAULT_WHEEL_SHIFT)
    }

    /// An empty wheel (default geometry) ordering same-instant events by
    /// `tie_break`. Must be set at construction, before any event is queued.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        let mut q = Self::new();
        q.tie_break = tie_break;
        q
    }

    /// An empty wheel with level-0 slots of `1 << shift` nanoseconds.
    /// Exposed for tests and tuning; geometry affects performance only,
    /// never pop order.
    pub fn with_shift(shift: u32) -> Self {
        assert!(
            shift + LEVEL_BITS * LEVELS as u32 <= 40,
            "wheel span must stay addressable"
        );
        TimerWheel {
            shift,
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [[0; 4]; LEVELS],
            cur: [0; LEVELS],
            epoch: 0,
            ready: BinaryHeap::new(),
            past: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            loc: LocMap::default(),
            lazy: CancelSet::default(),
            spare: Vec::new(),
            live_len: 0,
            next_seq: 0,
            scheduled_total: 0,
            tie_break: TieBreak::Fifo,
        }
    }

    /// Wheel position in nanoseconds: the start of the open level-0 slot.
    #[inline]
    fn position(&self) -> u64 {
        self.cur[0] << self.shift
    }

    /// Route one event to its region. Slot residents get a `loc` entry
    /// (physical cancel); heap residents register for lazy cancel.
    fn place(&mut self, se: ScheduledEvent<E>) {
        let t = se.at.as_nanos();
        if t < self.position() {
            self.lazy.register(se.seq);
            self.past.push(se);
            return;
        }
        let s0 = t >> self.shift;
        if s0 == self.cur[0] {
            self.lazy.register(se.seq);
            self.ready.push(se);
            return;
        }
        let (level, slot_abs) = if s0 >> LEVEL_BITS == self.cur[1] {
            (0usize, s0)
        } else {
            let s1 = s0 >> LEVEL_BITS;
            if s1 >> LEVEL_BITS == self.cur[2] {
                (1, s1)
            } else {
                let s2 = s1 >> LEVEL_BITS;
                if s2 >> LEVEL_BITS == self.epoch {
                    (2, s2)
                } else {
                    self.lazy.register(se.seq);
                    self.overflow.push(se);
                    return;
                }
            }
        };
        let ring = (slot_abs & SLOT_MASK) as usize;
        let vec = &mut self.slots[level * SLOTS + ring];
        self.loc.insert(
            se.seq,
            Loc {
                level: level as u8,
                slot: ring as u8,
                pos: vec.len() as u32,
            },
        );
        vec.push(se);
        set_bit(&mut self.occ[level], ring);
    }

    /// Take a slot's contents, leaving the reusable spare buffer in its
    /// place so the cascade never churns allocations.
    fn take_slot(&mut self, level: usize, ring: usize) -> Vec<ScheduledEvent<E>> {
        clear_bit(&mut self.occ[level], ring);
        std::mem::replace(
            &mut self.slots[level * SLOTS + ring],
            std::mem::take(&mut self.spare),
        )
    }

    /// Move the wheel forward until `ready` holds the next slot's events.
    /// Returns `false` when the wheel is completely empty.
    fn advance(&mut self) -> bool {
        loop {
            // A cascade or epoch slide may have dropped events straight into
            // `ready` (their level-0 slot is the one just opened); they are
            // earlier than anything still in the slots, so surface them now.
            if !self.ready.is_empty() {
                return true;
            }
            // Finest level first: open the next occupied level-0 slot.
            if let Some(i) = scan_from(&self.occ[0], (self.cur[0] & SLOT_MASK) as usize) {
                self.cur[0] = ((self.cur[1]) << LEVEL_BITS) | i as u64;
                let mut buf = self.take_slot(0, i);
                for se in buf.drain(..) {
                    self.loc.remove(&se.seq);
                    self.lazy.register(se.seq);
                    self.ready.push(se);
                }
                self.spare = buf;
                return true;
            }
            // Level 0 exhausted: open the next occupied level-1 slot and
            // cascade it down (strictly after the currently open one).
            if let Some(j) = scan_from(&self.occ[1], (self.cur[1] & SLOT_MASK) as usize + 1) {
                self.cur[1] = (self.cur[2] << LEVEL_BITS) | j as u64;
                self.cur[0] = self.cur[1] << LEVEL_BITS;
                let mut buf = self.take_slot(1, j);
                for se in buf.drain(..) {
                    self.loc.remove(&se.seq);
                    self.place(se);
                }
                self.spare = buf;
                continue;
            }
            // Level 1 exhausted: same one level up.
            if let Some(k) = scan_from(&self.occ[2], (self.cur[2] & SLOT_MASK) as usize + 1) {
                self.cur[2] = (self.epoch << LEVEL_BITS) | k as u64;
                self.cur[1] = self.cur[2] << LEVEL_BITS;
                self.cur[0] = self.cur[1] << LEVEL_BITS;
                let mut buf = self.take_slot(2, k);
                for se in buf.drain(..) {
                    self.loc.remove(&se.seq);
                    self.place(se);
                }
                self.spare = buf;
                continue;
            }
            // Whole wheel empty: slide the epoch to the earliest overflow
            // event and pull everything inside the new span back in.
            let Some(head) = self.overflow.peek() else {
                return false;
            };
            let t = head.at.as_nanos();
            self.epoch = t >> (self.shift + LEVEL_BITS * 3);
            self.cur[2] = t >> (self.shift + LEVEL_BITS * 2);
            self.cur[1] = t >> (self.shift + LEVEL_BITS);
            self.cur[0] = t >> self.shift;
            while let Some(h) = self.overflow.peek() {
                if h.at.as_nanos() >> (self.shift + LEVEL_BITS * 3) != self.epoch {
                    break;
                }
                let se = self.overflow.pop().expect("peeked event exists");
                // Transfer out of the lazy region: a cancelled overflow
                // entry dies here (its live_len was charged at cancel time).
                if !self.lazy.reap(se.seq) {
                    self.place(se);
                }
            }
        }
    }

    /// Ensure the earliest live event sits atop `past` or `ready` and return
    /// its `(time, tie)` key. Used by the pop path and by
    /// [`HybridQueue`](crate::HybridQueue) for exact cross-queue merging.
    pub(crate) fn prepare_head(&mut self) -> Option<(SimTime, u64)> {
        loop {
            // `past` is strictly earlier than `ready` (t < position <= ready).
            if let Some(se) = self.past.peek() {
                if !self.lazy.is_cancelled(se.seq) {
                    return Some((se.at, se.tie));
                }
                let se = self.past.pop().expect("peeked event exists");
                self.lazy.reap(se.seq);
                continue;
            }
            if let Some(se) = self.ready.peek() {
                if !self.lazy.is_cancelled(se.seq) {
                    return Some((se.at, se.tie));
                }
                let se = self.ready.pop().expect("peeked event exists");
                self.lazy.reap(se.seq);
                continue;
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Pop the head that [`prepare_head`](Self::prepare_head) exposed.
    pub(crate) fn pop_prepared(&mut self) -> Option<ScheduledEvent<E>> {
        self.prepare_head()?;
        let se = match self.past.pop() {
            Some(se) => se,
            None => self.ready.pop().expect("prepared head exists"),
        };
        self.lazy.reap(se.seq);
        self.live_len -= 1;
        Some(se)
    }

    /// Insert with a caller-supplied sequence number (the hybrid queue owns
    /// the shared counter). Returns the handle for the entry.
    pub(crate) fn insert_with_seq(
        &mut self,
        at: SimTime,
        seq: u64,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        self.scheduled_total += 1;
        self.live_len += 1;
        let tie = self.tie_break.key(seq, lane);
        self.place(ScheduledEvent {
            at,
            seq,
            tie,
            event,
        });
        TimerHandle(seq)
    }

    /// Schedule `event` to fire at absolute time `at` (default lane 0).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_in_lane(at, 0, event);
    }

    /// Schedule `event` at `at` in `lane` (the handling entity, used by
    /// [`TieBreak::Permuted`] same-instant ordering; ignored under FIFO).
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_with_seq(at, seq, lane, event);
    }

    /// Schedule `event` at `at`, returning a cancellation handle.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_in_lane(at, 0, event)
    }

    /// Cancellable scheduling with an explicit lane.
    pub fn schedule_cancellable_in_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_with_seq(at, seq, lane, event)
    }

    /// Cancel a pending event. Slot residents are removed *physically* in
    /// O(1) — the whole point of the wheel — so a cancelled RTO never sifts
    /// through a heap again; heap residents fall back to lazy deletion.
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        if let Some(loc) = self.loc.remove(&handle.0) {
            let (level, ring, pos) = (loc.level as usize, loc.slot as usize, loc.pos as usize);
            let vi = level * SLOTS + ring;
            self.slots[vi].swap_remove(pos);
            if let Some(moved) = self.slots[vi].get(pos) {
                self.loc
                    .get_mut(&moved.seq)
                    .expect("slot resident has a loc entry")
                    .pos = loc.pos;
            }
            if self.slots[vi].is_empty() {
                clear_bit(&mut self.occ[level], ring);
            }
            self.live_len -= 1;
            return true;
        }
        if self.lazy.cancel(handle) {
            self.live_len -= 1;
            return true;
        }
        false
    }

    /// Remove and return the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_prepared().map(|se| (se.at, se.event))
    }

    /// The firing time of the earliest live pending event.
    ///
    /// Immutable and therefore O(n) in the worst case (it may not rotate the
    /// wheel); the hot path uses [`prepare_head`](Self::prepare_head)
    /// instead. Fine for tests and debug assertions.
    pub fn peek_time(&self) -> Option<SimTime> {
        let live_min = |heap: &BinaryHeap<ScheduledEvent<E>>| {
            let head = heap.peek()?;
            if !self.lazy.is_cancelled(head.seq) {
                return Some(head.at);
            }
            heap.iter()
                .filter(|se| !self.lazy.is_cancelled(se.seq))
                .map(|se| se.at)
                .min()
        };
        let mut best = live_min(&self.past);
        for cand in [live_min(&self.ready), live_min(&self.overflow)] {
            best = match (best, cand) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        // Slot residents are all live by construction (cancel removes them).
        let slot_min = self
            .slots
            .iter()
            .flat_map(|v| v.iter())
            .map(|se| se.at)
            .min();
        match (best, slot_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.live_len
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live_len == 0
    }

    /// Total events ever scheduled on this queue (monotone; survives
    /// [`clear`](Self::clear)).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (keeps `scheduled_total` and the seq counter).
    pub fn clear(&mut self) {
        for v in &mut self.slots {
            v.clear();
        }
        self.occ = [[0; 4]; LEVELS];
        self.cur = [0; LEVELS];
        self.epoch = 0;
        self.ready.clear();
        self.past.clear();
        self.overflow.clear();
        self.loc.clear();
        self.lazy.clear();
        self.live_len = 0;
    }

    /// Release excess capacity after a burst.
    pub fn shrink_to_fit(&mut self) {
        for v in &mut self.slots {
            v.shrink_to_fit();
        }
        self.ready.shrink_to_fit();
        self.past.shrink_to_fit();
        self.overflow.shrink_to_fit();
        self.loc.shrink_to_fit();
        self.spare = Vec::new();
    }
}

impl<E> QueueBackend<E> for TimerWheel<E> {
    fn with_tie_break(tie_break: TieBreak) -> Self {
        TimerWheel::with_tie_break(tie_break)
    }
    fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        TimerWheel::schedule_in_lane(self, at, lane, event);
    }
    fn schedule_cancellable_in_lane(&mut self, at: SimTime, lane: u64, event: E) -> TimerHandle {
        TimerWheel::schedule_cancellable_in_lane(self, at, lane, event)
    }
    fn cancel(&mut self, handle: TimerHandle) -> bool {
        TimerWheel::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        TimerWheel::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        TimerWheel::peek_time(self)
    }
    fn len(&self) -> usize {
        TimerWheel::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        TimerWheel::scheduled_total(self)
    }
    fn clear(&mut self) {
        TimerWheel::clear(self);
    }
    fn shrink_to_fit(&mut self) {
        TimerWheel::shrink_to_fit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny geometry (4 ns level-0 slots) so unit tests cascade constantly.
    fn tiny() -> TimerWheel<u64> {
        TimerWheel::with_shift(2)
    }

    #[test]
    fn pops_in_time_order_across_levels() {
        let mut w = tiny();
        // Spread over level 0, level 1, level 2, and overflow spans.
        for (i, t) in [3u64, 900, 17, 70_000, 5_000_000, 41, 128, 1 << 36]
            .iter()
            .enumerate()
        {
            w.schedule(SimTime::from_nanos(*t), i as u64);
        }
        let mut times = Vec::new();
        while let Some((t, _)) = w.pop() {
            times.push(t.as_nanos());
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(times.len(), 8);
    }

    #[test]
    fn same_instant_is_fifo_even_through_cascade() {
        let mut w = tiny();
        let t = SimTime::from_nanos(100_000); // lands above level 0
        for i in 0..50u64 {
            w.schedule(t, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| w.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_is_physical_for_slot_residents() {
        let mut w = tiny();
        let h1 = w.schedule_cancellable(SimTime::from_nanos(1_000), 1);
        let h2 = w.schedule_cancellable(SimTime::from_nanos(1_001), 2);
        let h3 = w.schedule_cancellable(SimTime::from_nanos(1_002), 3);
        assert_eq!(w.len(), 3);
        // Middle removal exercises the swap_remove position fixup.
        assert!(w.cancel(h2));
        assert!(!w.cancel(h2), "double cancel is a no-op");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1_000), 1)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1_002), 3)));
        assert!(!w.cancel(h1), "cancel after fire reports false");
        assert!(!w.cancel(h3));
        assert!(w.pop().is_none());
    }

    #[test]
    fn cancel_works_in_every_region() {
        let mut w = tiny();
        w.schedule(SimTime::from_nanos(500), 0);
        w.pop(); // wheel position is now 500: a t=0 insert lands in `past`
        let h_past = w.schedule_cancellable(SimTime::from_nanos(0), 1);
        let h_ready = w.schedule_cancellable(SimTime::from_nanos(501), 2);
        let h_slot = w.schedule_cancellable(SimTime::from_nanos(1_000), 3);
        let h_over = w.schedule_cancellable(SimTime::from_nanos(1 << 40), 4);
        for h in [h_past, h_ready, h_slot, h_over] {
            assert!(w.cancel(h));
            assert!(!w.cancel(h));
        }
        assert!(w.is_empty());
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_time_is_live_minimum() {
        let mut w = tiny();
        assert_eq!(w.peek_time(), None);
        let h = w.schedule_cancellable(SimTime::from_nanos(3), 3);
        w.schedule(SimTime::from_nanos(50_000), 50);
        assert_eq!(w.peek_time(), Some(SimTime::from_nanos(3)));
        w.cancel(h);
        assert_eq!(
            w.peek_time(),
            Some(SimTime::from_nanos(50_000)),
            "peek skips the cancelled head"
        );
    }

    #[test]
    fn len_and_counters_track_liveness() {
        let mut w = tiny();
        for i in 0..10u64 {
            w.schedule(SimTime::from_nanos(i * 3), i);
        }
        let h = w.schedule_cancellable(SimTime::from_nanos(99), 99);
        assert_eq!(w.len(), 11);
        assert_eq!(w.scheduled_total(), 11);
        w.cancel(h);
        assert_eq!(w.len(), 10, "len is live events only");
        w.pop();
        assert_eq!(w.len(), 9);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.scheduled_total(), 11, "lifetime counter survives clear");
        w.schedule(SimTime::from_nanos(1), 1);
        assert_eq!(w.scheduled_total(), 12);
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1), 1)));
    }

    #[test]
    fn epoch_slide_reaches_far_overflow() {
        let mut w = tiny();
        // Far beyond the top level's span twice over.
        w.schedule(SimTime::from_nanos(1 << 45), 1);
        w.schedule(SimTime::from_nanos((1 << 45) + 7), 2);
        w.schedule(SimTime::from_nanos(5), 0);
        assert_eq!(w.pop(), Some((SimTime::from_nanos(5), 0)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos(1 << 45), 1)));
        assert_eq!(w.pop(), Some((SimTime::from_nanos((1 << 45) + 7), 2)));
        assert!(w.pop().is_none());
    }

    #[test]
    fn rearm_pattern_stays_cheap_and_correct() {
        // The RTO pattern: schedule far out, cancel, rearm slightly later.
        let mut w = TimerWheel::with_shift(10);
        let mut handle = w.schedule_cancellable(SimTime::from_micros(200), 0);
        for i in 1..500u64 {
            assert!(w.cancel(handle));
            handle = w.schedule_cancellable(SimTime::from_micros(200 + i), i);
            assert_eq!(w.len(), 1, "exactly one live timer at all times");
        }
        let (t, e) = w.pop().expect("final timer fires");
        assert_eq!(t, SimTime::from_micros(699));
        assert_eq!(e, 499);
        assert!(w.pop().is_none());
    }
}

#[cfg(test)]
mod equivalence {
    //! Pop-order equivalence against the reference heap, under arbitrary
    //! interleavings — the same harness shape the calendar queue uses.

    use super::*;
    use crate::queue::EventQueue;
    use crate::tiebreak::pack_lane;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Schedule(u64),
        ScheduleCancellable(u64),
        Pop,
        Cancel(usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Spans several cascade levels of the tiny wheel; coarse
            // granularity forces FIFO tie-breaks.
            4 => (0u64..2_000_000).prop_map(|t| Op::Schedule(t / 7 * 7)),
            3 => (0u64..2_000_000).prop_map(|t| Op::ScheduleCancellable(t / 7 * 7)),
            4 => Just(Op::Pop),
            2 => (0usize..64).prop_map(Op::Cancel),
        ]
    }

    fn check_equivalence(ops: Vec<Op>, shift: u32, tb: TieBreak) -> Result<(), String> {
        let mut heap: EventQueue<u64> = EventQueue::with_tie_break(tb);
        let mut wheel: TimerWheel<u64> = TimerWheel::with_shift(shift);
        wheel.tie_break = tb;
        let mut handles: Vec<(TimerHandle, TimerHandle)> = Vec::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Schedule(t) => {
                    heap.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    wheel.schedule_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    payload += 1;
                }
                Op::ScheduleCancellable(t) => {
                    let hh = heap.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    let hw = wheel.schedule_cancellable_in_lane(
                        SimTime::from_nanos(t),
                        pack_lane((payload % 5) as u16, 0),
                        payload,
                    );
                    handles.push((hh, hw));
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(heap.pop(), wheel.pop(), "pop diverged");
                }
                Op::Cancel(k) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let (hh, hw) = handles[k % handles.len()];
                    prop_assert_eq!(heap.cancel(hh), wheel.cancel(hw), "cancel diverged");
                }
            }
            prop_assert_eq!(heap.len(), wheel.len(), "live length diverged");
            prop_assert_eq!(heap.peek_time(), wheel.peek_time(), "peek diverged");
            prop_assert_eq!(heap.scheduled_total(), wheel.scheduled_total());
        }
        loop {
            let (a, b) = (heap.pop(), wheel.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Equivalence under a tiny geometry (constant cascades).
        #[test]
        fn same_pops_tiny_wheel(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops, 2, TieBreak::Fifo)?;
        }

        /// Equivalence under the production geometry.
        #[test]
        fn same_pops_default_wheel(ops in prop::collection::vec(arb_op(), 1..300)) {
            check_equivalence(ops, 13, TieBreak::Fifo)?;
        }

        /// Equivalence under a coarse wheel (everything piles into `ready`).
        #[test]
        fn same_pops_coarse_wheel(ops in prop::collection::vec(arb_op(), 1..200)) {
            check_equivalence(ops, 16, TieBreak::Fifo)?;
        }

        /// Equivalence holds under permuted tie-break: wheel regions order by
        /// `(time, tie)` whatever the tie policy.
        #[test]
        fn same_pops_permuted_wheel(
            ops in prop::collection::vec(arb_op(), 1..300),
            seed in 0u64..1000,
        ) {
            check_equivalence(ops, 2, TieBreak::Permuted(seed))?;
        }
    }
}
