//! Shared plumbing for the experiment binaries.

use crate::report::write_sweep_json;
use crate::sweep::{sweep, SweepGrid, SweepResults};
use std::path::{Path, PathBuf};

/// Where sweep results are cached so Figures 2–4 binaries share one run.
pub fn default_cache_path(tiny: bool) -> PathBuf {
    let name = if tiny {
        "sweep_tiny.json"
    } else {
        "sweep.json"
    };
    PathBuf::from("results").join(name)
}

/// Load a cached sweep if it exists and was produced by the same grid;
/// otherwise run the sweep and cache it.
pub fn sweep_cached(grid: &SweepGrid, path: &Path) -> SweepResults {
    if let Ok(text) = std::fs::read_to_string(path) {
        if let Ok(res) = serde_json::from_str::<SweepResults>(&text) {
            if res.grid == *grid {
                eprintln!("[experiments] using cached sweep from {}", path.display());
                return res;
            }
            eprintln!(
                "[experiments] cache at {} has a different grid; re-running",
                path.display()
            );
        }
    }
    eprintln!(
        "[experiments] running sweep: {} transports x {} queues x {} delays x 2 depths...",
        grid.transports.len(),
        grid.queues.len(),
        grid.target_delays_us.len()
    );
    let res = sweep(grid);
    if let Err(e) = write_sweep_json(&res, path) {
        eprintln!("[experiments] warning: could not cache sweep: {e}");
    }
    res
}

/// Parse the common flags: `--tiny` (reduced grid) and `--fresh` (ignore
/// cache). Returns (grid, cache_path, fresh).
pub fn parse_args() -> (SweepGrid, PathBuf, bool) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let fresh = args.iter().any(|a| a == "--fresh");
    if let Some(bad) = args
        .iter()
        .find(|a| a.as_str() != "--tiny" && a.as_str() != "--fresh")
    {
        eprintln!("unknown argument {bad}; supported: --tiny --fresh");
        std::process::exit(2);
    }
    let grid = if tiny {
        SweepGrid::tiny()
    } else {
        SweepGrid::default()
    };
    (grid, default_cache_path(tiny), fresh)
}

/// Run (or load) the sweep per the parsed flags.
pub fn sweep_from_args() -> SweepResults {
    let (grid, path, fresh) = parse_args();
    if fresh {
        let _ = std::fs::remove_file(&path);
    }
    sweep_cached(&grid, &path)
}
