//! Reproduce Figure 4: mean per-packet network latency vs RED target delay,
//! shallow (4a) and deep (4b), normalised to DropTail of the same depth.
//!
//! Usage: `fig4_latency [--tiny] [--fresh]`

use experiments::cli::sweep_from_args;
use experiments::figures::fig4;
use experiments::report::render_panel;

fn main() {
    let res = sweep_from_args();
    for panel in fig4(&res) {
        println!("{}", render_panel(&panel));
    }
}
