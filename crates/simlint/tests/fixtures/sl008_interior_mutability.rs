//! SL008 fixture: interior mutability inside simulation state.
//!
//! Scanned as `crates/tcpstack/src/state.rs`. Five violations: three
//! fields of the state struct, one `static mut`, one `Ordering::Relaxed`.
//! Locals in fn bodies and the test region must stay clean.

struct BadState {
    acked: Cell<u64>,
    window: RefCell<Window>,
    marks: AtomicU64,
}

static mut GLOBAL_DROPS: u64 = 0;

fn read_marks(m: &AtomicU64) -> u64 {
    m.load(Ordering::Relaxed)
}

// ---- clean from here down ----

fn scratchpad() -> u64 {
    // A local is owned by one stack frame, not shared simulation state.
    let scratch = RefCell::new(0u64);
    scratch.into_inner()
}

enum CleanState {
    Idle { since: u64 },
    Busy(u64),
}

#[cfg(test)]
mod tests {
    struct Probe {
        hits: Cell<u64>,
    }
}
