//! Figure 4 (mean per-packet network latency): one nano-scale point per
//! series per depth at the paper's 500 µs target delay. Prints the
//! regenerated metric.

use bench::{figure_series, nano_point};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::BufferDepth;

fn bench_fig4(c: &mut Criterion) {
    for depth in BufferDepth::ALL {
        let mut g = c.benchmark_group(format!("fig4_latency_{}", depth.label()));
        g.sample_size(10);
        for (name, transport, queue) in figure_series() {
            let m = nano_point(transport, queue, depth, 500);
            println!(
                "[fig4 {} @nano] {name}: mean latency {:.1} us",
                depth.label(),
                m.mean_latency_s * 1e6
            );
            g.bench_function(name, |b| {
                b.iter(|| nano_point(transport, queue, depth, 500).mean_latency_s)
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
