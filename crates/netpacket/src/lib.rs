#![warn(missing_docs)]

//! Packet model shared by the whole simulator.
//!
//! This crate defines exactly the wire-level facts the CLUSTER 2017 paper's
//! argument rests on:
//!
//! * the **IP-header ECN codepoints** (paper Table II): `Non-ECT`, `ECT(0)`,
//!   `ECT(1)`, `CE`;
//! * the **TCP-header ECN flags** (paper Table I): `ECE` and `CWR`, alongside
//!   the ordinary `SYN`/`ACK`/`FIN`/... flags;
//! * the [`Packet`] struct carried through switches and links;
//! * [`PacketKind`] classification (pure ACK vs. data vs. SYN ...), which is
//!   what the paper's protection modes dispatch on;
//! * the [`QueueDiscipline`] trait implemented by `ecn-core`'s AQMs;
//! * the [`PacketPool`] arena whose 8-byte [`PacketRef`] handles the
//!   scheduler and switch ports pass around instead of whole packets.

mod classify;
mod ecn;
mod flags;
mod packet;
mod pool;
mod qdisc;

pub use classify::PacketKind;
pub use ecn::EcnCodepoint;
pub use flags::TcpFlags;
pub use packet::{FlowId, NodeId, Packet, PacketId, SackBlocks, TCP_HEADER_BYTES};
pub use pool::{PacketPool, PacketRef, PoolStats};
pub use qdisc::{packet_event, ConservationCheck, EnqueueOutcome, QueueDiscipline, QueueStats};
