//! SL006 fixture: per-packet heap traffic outside the pool API.
//!
//! The five violations sit on lines 7–15; everything after the marker must
//! stay clean.

fn hot_path(&mut self, packet: Packet, pkt: Packet) {
    let boxed = Box::new(packet); // SL006: per-packet Box
    self.staging.push(pkt); // SL006: payload into growable buffer
    self.queue.push_back(Packet::tcp(1, 2)); // SL006: inline construction
    // Regression: the builder-style multiline call and the turbofish
    // spelling must fire exactly like the single-line form.
    let built = Box::new(
        frame(packet), // SL006 (reported on the `Box` line above)
    );
    let tf = Box::<Packet>::new(pkt); // SL006: turbofish
}

// ---- clean from here down ----

fn clean(&mut self, r: PacketRef) {
    // A field label carries an 8-byte handle, not a payload.
    self.pending.push((done, Event::Arrive { dev, packet: r }));
    // Counters that merely contain "packet" are not payloads.
    let q = Box::new(DropTail::new(spec.host_buffer_packets));
    // Turbofish of a non-packet type is not packet traffic.
    let n = Box::<u64>::new(7);
    self.refs.push(r);
}

#[cfg(test)]
mod tests {
    fn exempt() {
        let b = Box::new(packet);
        v.push(pkt);
    }
}
