//! SL007 fixture: hash-order iteration in a simulation crate.
//!
//! Scanned as `crates/netsim/src/state.rs`. The custom hashers keep SL002
//! quiet so the two SL007 sites (lines 16 and 20) are isolated; the sorted
//! collect, the Vec loop, and the test region must stay clean.

type FlowMap = HashMap<u64, Flow, BuildHasherDefault<SeqHasher>>;

struct Tracker {
    flows: FlowMap,
    peers: HashSet<u64, BuildHasherDefault<SeqHasher>>,
}

impl Tracker {
    fn bad_broadcast(&mut self) {
        for (id, f) in &self.flows {
            // SL007: visits flows in hash order on the hot path.
            touch(id, f);
        }
        let sample: Vec<u64> = self.peers.iter().take(3).copied().collect();
        // SL007: first-three-in-hash-order is an arbitrary sample.
        consume(sample);
    }
}

// ---- clean from here down ----

impl Tracker {
    fn fine_report(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn fine_vec(&self, order: &Vec<u64>) -> u64 {
        let mut acc = 0;
        for id in order.iter() {
            acc ^= id;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    fn exempt(t: &Tracker) {
        for p in &t.peers {
            consume(p);
        }
    }
}
