// Fixture: SL001 — wall-clock time sources in a simulation crate.
// Scanned by tests/lint_tests.rs under a synthetic crates/netsim/src/ path;
// never compiled, never scanned by the workspace walker (fixtures/ is
// skipped).

use std::time::Instant;

pub fn bad_latency_probe() -> u128 {
    let start = Instant::now(); // SL001
    start.elapsed().as_nanos()
}

pub fn bad_timestamp() {
    let _ = std::time::SystemTime::now(); // SL001
}

// Negative case: the word in a comment (Instant) or string must not fire.
pub fn fine() -> &'static str {
    "Instant SystemTime"
}
