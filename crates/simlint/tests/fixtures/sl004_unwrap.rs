// Fixture: SL004 — unwrap/expect in non-test library code.

pub fn bad(x: Option<u8>, y: Result<u8, ()>) -> u8 {
    let a = x.unwrap(); // SL004
    let b = y.expect("y must be set"); // SL004
    a + b
}

pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0) // unwrap_or is not unwrap
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        Some(1u8).unwrap(); // exempt: inside #[cfg(test)]
    }
}
