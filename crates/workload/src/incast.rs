//! Partition-aggregate incast: `fanin` responders answer one aggregator at
//! (nearly) the same instant, repeated for a configurable number of rounds.
//!
//! This is the canonical trigger for the paper's non-ECT pathology: the
//! responses pile into the aggregator's ToR port and hold its queue above
//! the marking threshold K for the whole round. Responder launches are
//! *staggered* by a small random jitter — exactly like real
//! partition-aggregate software — so late responders' SYNs arrive when the
//! standing queue is already above K. An AQM that early-**drops** non-ECT
//! packets (the paper's RED-mimic without protection) kills those SYNs and
//! the affected responders sit in a 1-second connection-establishment RTO
//! while everyone else finishes: the round's coflow completion time
//! collapses to the retransmission timer, not the network's capacity.

use crate::model::{class_of, FlowSpec, Launcher, TrafficModel};
use netpacket::{FlowId, NodeId};
use serde::Serialize;
use simevent::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Timer-token kinds (bits 60..63; bit 63 stays clear for `PairApp`).
const KIND_LAUNCH: u64 = 1;
const KIND_ROUND: u64 = 2;

fn token(kind: u64, round: u32, responder: u32) -> u64 {
    (kind << 60) | (u64::from(round) << 32) | u64::from(responder)
}

/// Configuration of a [`Incast`] workload.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IncastConfig {
    /// The host every responder sends to.
    pub aggregator: NodeId,
    /// Responders per round (each contributes one response flow).
    pub fanin: u32,
    /// Bytes per response.
    pub response_bytes: u64,
    /// Rounds to run; a round starts `round_gap` after the previous finishes.
    pub rounds: u32,
    /// Responder launches are jittered uniformly over `[0, stagger]`.
    pub stagger: SimDuration,
    /// Idle gap between a round's last completion and the next round.
    pub round_gap: SimDuration,
    /// Seed for the launch jitter.
    pub seed: u64,
}

/// Partition-aggregate incast generator. Each round is one coflow (group id
/// = round index); the round's collective completion time is the metric.
#[derive(Debug)]
pub struct Incast {
    cfg: IncastConfig,
    rng: SimRng,
    /// Round each in-flight flow belongs to.
    flows: BTreeMap<FlowId, u32>,
    issued_in_round: u32,
    completed_in_round: u32,
    rounds_launched: u32,
    rounds_completed: u32,
}

impl Incast {
    /// A generator that has not issued anything yet.
    pub fn new(cfg: IncastConfig) -> Self {
        assert!(cfg.fanin > 0 && cfg.rounds > 0, "degenerate incast config");
        let rng = SimRng::new(cfg.seed).fork(0x1ca5);
        Incast {
            cfg,
            rng,
            flows: BTreeMap::new(),
            issued_in_round: 0,
            completed_in_round: 0,
            rounds_launched: 0,
            rounds_completed: 0,
        }
    }

    /// Rounds whose every response completed.
    pub fn rounds_completed(&self) -> u32 {
        self.rounds_completed
    }

    /// The host index of the `idx`-th responder (skips the aggregator).
    fn responder(&self, idx: u32) -> NodeId {
        if idx < self.cfg.aggregator.0 {
            NodeId(idx)
        } else {
            NodeId(idx + 1)
        }
    }

    fn launch_round(&mut self, l: &mut dyn Launcher, now: SimTime) {
        let round = self.rounds_launched;
        self.rounds_launched += 1;
        self.issued_in_round = 0;
        self.completed_in_round = 0;
        let jitter_ns = self.cfg.stagger.as_nanos();
        for idx in 0..self.cfg.fanin {
            let at = now + SimDuration::from_nanos(self.rng.next_below(jitter_ns + 1));
            l.set_timer(at, token(KIND_LAUNCH, round, idx));
        }
    }
}

impl TrafficModel for Incast {
    fn on_start(&mut self, l: &mut dyn Launcher, now: SimTime) {
        assert!(
            self.cfg.fanin < l.num_hosts(),
            "need fanin + 1 hosts (responders + aggregator)"
        );
        self.launch_round(l, now);
    }

    fn on_flow_complete(&mut self, flow: FlowId, l: &mut dyn Launcher, now: SimTime) {
        let round = self.flows.remove(&flow).expect("unknown incast flow");
        self.completed_in_round += 1;
        if self.completed_in_round == self.cfg.fanin {
            self.rounds_completed += 1;
            if self.rounds_launched < self.cfg.rounds {
                l.set_timer(now + self.cfg.round_gap, token(KIND_ROUND, round + 1, 0));
            }
        }
    }

    fn on_timer(&mut self, tok: u64, l: &mut dyn Launcher, now: SimTime) {
        let kind = tok >> 60;
        let round = ((tok >> 32) & 0x0fff_ffff) as u32;
        let idx = (tok & 0xffff_ffff) as u32;
        match kind {
            KIND_LAUNCH => {
                let flow = l.start_flow(
                    FlowSpec {
                        src: self.responder(idx),
                        dst: self.cfg.aggregator,
                        bytes: self.cfg.response_bytes,
                        class: class_of(self.cfg.response_bytes),
                        coflow: Some(u64::from(round)),
                    },
                    now,
                );
                self.flows.insert(flow, round);
                self.issued_in_round += 1;
                if self.issued_in_round == self.cfg.fanin {
                    l.seal_coflow(u64::from(round));
                }
            }
            KIND_ROUND => self.launch_round(l, now),
            _ => unreachable!("unknown incast timer token"),
        }
    }

    fn done(&self) -> bool {
        self.rounds_completed == self.cfg.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::mock::MockLauncher;

    fn cfg() -> IncastConfig {
        IncastConfig {
            aggregator: NodeId(2),
            fanin: 3,
            response_bytes: 64_000,
            rounds: 2,
            stagger: SimDuration::from_micros(40),
            round_gap: SimDuration::from_millis(1),
            seed: 7,
        }
    }

    #[test]
    fn one_round_fans_into_aggregator() {
        let mut m = Incast::new(cfg());
        let mut l = MockLauncher::new(8);
        m.on_start(&mut l, SimTime::ZERO);
        assert_eq!(l.timers.len(), 3, "one launch timer per responder");
        for (at, tok) in l.timers.clone() {
            assert!(at.since(SimTime::ZERO) <= SimDuration::from_micros(40));
            m.on_timer(tok, &mut l, at);
        }
        assert_eq!(l.flows.len(), 3);
        assert!(l.flows.iter().all(|f| f.dst == NodeId(2)));
        assert!(l.flows.iter().all(|f| f.src != NodeId(2)));
        assert_eq!(l.sealed, vec![0], "round 0 sealed after last launch");
        assert!(!m.done());
    }

    #[test]
    fn rounds_chain_until_done() {
        let mut m = Incast::new(cfg());
        let mut l = MockLauncher::new(8);
        m.on_start(&mut l, SimTime::ZERO);
        let mut t = 0;
        while !m.done() {
            assert!(t < l.timers.len(), "stalled before done");
            let (at, tok) = l.timers[t];
            t += 1;
            m.on_timer(tok, &mut l, at);
            // Once a round is fully issued, complete all of its flows; round
            // completion must then arm the next round's timer.
            while m.flows.len() == m.cfg.fanin as usize {
                let ids: Vec<FlowId> = m.flows.keys().copied().collect();
                for id in ids {
                    m.on_flow_complete(id, &mut l, at + SimDuration::from_micros(100));
                }
            }
        }
        assert_eq!(m.rounds_completed(), 2);
        assert_eq!(l.flows.len(), 6, "fanin flows per round");
        assert_eq!(l.sealed, vec![0, 1]);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = MockLauncher::new(8);
        let mut b = MockLauncher::new(8);
        Incast::new(cfg()).on_start(&mut a, SimTime::ZERO);
        Incast::new(cfg()).on_start(&mut b, SimTime::ZERO);
        assert_eq!(a.timers, b.timers);
    }
}
