//! End-to-end determinism: each generator, run twice on a real network with
//! the same seed, must produce identical FCT / coflow / latency summaries.
//! This is the property the experiments bin's byte-identical-JSON acceptance
//! check rests on.

use ecn_core::QdiscSpec;
use netsim::{ClusterSpec, LinkSpec, Network, Simulation};
use simevent::{SimDuration, SimTime};
use simmetrics::{FctSummary, IdealFct};
use tcpstack::{EcnMode, TcpConfig};
use workload::{
    CoflowSummary, Incast, IncastConfig, Mixed, MixedConfig, Rpc, RpcConfig, SizeDist,
    TrafficModel, WorkloadApp,
};

const HOSTS: u32 = 6;

fn network(seed: u64) -> Network {
    let spec = ClusterSpec::single_rack(
        HOSTS,
        LinkSpec::gbps(1, 5),
        QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        seed,
    );
    Network::new(spec)
}

fn ideal() -> IdealFct {
    IdealFct {
        base_rtt: SimDuration::from_micros(20),
        bottleneck_bps: 1_000_000_000,
    }
}

fn run<M: TrafficModel>(model: M) -> (FctSummary, CoflowSummary, u64) {
    let tcp = TcpConfig::with_ecn(EcnMode::Dctcp);
    let app = WorkloadApp::new(model, tcp, ideal());
    let mut sim = Simulation::new(network(99), app);
    sim.time_limit = SimTime::from_secs(30);
    sim.run();
    assert!(
        sim.app.model.done() && sim.app.flows_in_flight() == 0,
        "workload did not finish inside the time limit"
    );
    (
        sim.app.fct_summary(),
        sim.app.coflow_summary(),
        sim.app.flows_issued(),
    )
}

fn incast(seed: u64) -> Incast {
    Incast::new(IncastConfig {
        aggregator: netpacket::NodeId(0),
        fanin: 4,
        response_bytes: 256_000,
        rounds: 3,
        stagger: SimDuration::from_micros(50),
        round_gap: SimDuration::from_millis(1),
        seed,
    })
}

fn mixed(seed: u64) -> Mixed {
    Mixed::new(MixedConfig {
        elephant_lanes: 3,
        elephant_bytes: 2_000_000,
        elephants_per_lane: 2,
        mice: 20,
        mice_mean_gap: SimDuration::from_micros(500),
        mice_sizes: SizeDist::WebSearch,
        seed,
    })
}

fn rpc(seed: u64) -> Rpc {
    Rpc::new(RpcConfig {
        clients: 2,
        fanout: 3,
        request_bytes: 2_000,
        response_bytes: 32_000,
        requests_per_client: 4,
        think_time: SimDuration::from_micros(200),
        service_jitter: SimDuration::from_micros(100),
        slo: SimDuration::from_millis(5),
        seed,
    })
}

#[test]
fn incast_same_seed_identical() {
    let a = run(incast(7));
    let b = run(incast(7));
    assert_eq!(a, b);
    let (fct, coflows, flows) = a;
    assert_eq!(flows, 12, "fanin x rounds");
    assert_eq!(coflows.finished, 3);
    assert_eq!(fct.all.flows, 12);
    assert!(
        fct.all.slowdown_p50 >= 1.0,
        "slowdown is ≥ 1 by construction"
    );
}

#[test]
fn incast_different_seed_differs() {
    let a = run(incast(7));
    let b = run(incast(8));
    assert_ne!(
        a.0.all.fct_mean_us, b.0.all.fct_mean_us,
        "different jitter seeds must yield different FCTs"
    );
}

#[test]
fn mixed_same_seed_identical() {
    let a = run(mixed(21));
    let b = run(mixed(21));
    assert_eq!(a, b);
    let (fct, coflows, flows) = a;
    assert_eq!(flows, 26, "6 elephants + 20 mice");
    assert_eq!(coflows.coflows, 3, "one coflow per elephant lane");
    assert_eq!(coflows.finished, 3);
    assert!(fct.elephants.flows >= 6);
}

#[test]
fn rpc_same_seed_identical_and_closed_loop() {
    let (a, rpc_a) = {
        let tcp = TcpConfig::with_ecn(EcnMode::Dctcp);
        let app = WorkloadApp::new(rpc(3), tcp, ideal());
        let mut sim = Simulation::new(network(99), app);
        sim.time_limit = SimTime::from_secs(30);
        sim.run();
        (sim.app.fct_summary(), sim.app.model.summary())
    };
    let b = run(rpc(3));
    assert_eq!(a, b.0);
    assert_eq!(rpc_a.requests, 8, "2 clients x 4 requests");
    assert_eq!(b.2, 48, "8 requests x (3 requests + 3 responses)");
    assert_eq!(b.1.finished, 8, "every request coflow finished");
    assert!(rpc_a.latency_p50_us > 0.0);
    assert_eq!(
        rpc_a.slo_violations, 0,
        "uncongested DropTail meets the SLO"
    );
}
