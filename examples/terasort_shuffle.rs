//! The paper's workload: a Terasort job on a two-rack cluster, comparing the
//! broken configuration (stock RED + ECN) against the paper's two fixes.
//!
//! Run with: `cargo run --release --example terasort_shuffle`

use hadoop_ecn::prelude::*;

fn run(label: &str, qdisc: QdiscSpec, ecn: EcnMode) {
    let spec = ClusterSpec {
        racks: 2,
        hosts_per_rack: 4,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(10, 5),
        switch_qdisc: qdisc,
        host_buffer_packets: 4000,
        seed: 20170905,
    };
    let n = spec.total_hosts();
    let job = JobSpec {
        input_bytes_per_node: 16_000_000,
        map_waves: 2,
        map_rate_bps: 100_000_000,
        reduce_rate_bps: 200_000_000,
        tcp: TcpConfig {
            recv_wnd: 128 << 10,
            ..TcpConfig::with_ecn(ecn)
        },
        parallel_copies: 5,
        shuffle_jitter: SimDuration::from_millis(10),
        seed: 99,
    };
    let net = Network::new(spec);
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    let report = sim.run();
    assert!(report.app_done, "{label}: job did not finish");

    let res = sim.app.result();
    let stats = sim.net.port_stats().total;
    let tx = sim.net.sender_stats_total();
    println!(
        "{label:<34} runtime {:>8}   latency {:>9}   ack-drops {:>5}   timeouts {:>3}",
        res.runtime,
        sim.net.latency().mean(),
        stats.dropped_early.get(PacketKind::PureAck),
        tx.timeouts,
    );
}

fn main() {
    let gbps = 1_000_000_000;
    let delay = SimDuration::from_micros(500);
    let shallow = 100;

    println!("Terasort, 8 nodes x 16 MB, shallow switch buffers ({shallow} pkts), target delay {delay}:\n");

    run(
        "droptail (baseline)",
        QdiscSpec::DropTail {
            capacity_packets: shallow,
        },
        EcnMode::Off,
    );
    run(
        "stock RED+ECN  [paper: broken]",
        QdiscSpec::Red(RedConfig::from_target_delay(
            delay,
            gbps,
            1526,
            shallow,
            ProtectionMode::Default,
        )),
        EcnMode::Ecn,
    );
    run(
        "RED+ECN ece-bit  [proposal 1a]",
        QdiscSpec::Red(RedConfig::from_target_delay(
            delay,
            gbps,
            1526,
            shallow,
            ProtectionMode::EceBit,
        )),
        EcnMode::Ecn,
    );
    run(
        "RED+ECN ack+syn  [proposal 1b]",
        QdiscSpec::Red(RedConfig::from_target_delay(
            delay,
            gbps,
            1526,
            shallow,
            ProtectionMode::AckSyn,
        )),
        EcnMode::Ecn,
    );
    run(
        "simple marking + DCTCP  [proposal 2]",
        QdiscSpec::SimpleMarking(SimpleMarkingConfig::from_target_delay(
            delay, gbps, 1526, shallow,
        )),
        EcnMode::Dctcp,
    );
}
