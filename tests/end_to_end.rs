//! Cross-crate integration tests through the facade API.

use hadoop_ecn::prelude::*;

fn marking_rack(n: u32, threshold: u64, seed: u64) -> ClusterSpec {
    ClusterSpec::single_rack(
        n,
        LinkSpec::gbps(1, 5),
        QdiscSpec::SimpleMarking(SimpleMarkingConfig {
            capacity_packets: 100,
            threshold_packets: threshold,
        }),
        seed,
    )
}

#[test]
fn quickstart_flow_completes() {
    let net = Network::new(marking_rack(4, 20, 42));
    let app = StaticFlows::all_at_zero(
        vec![(NodeId(0), NodeId(1), 1_000_000)],
        TcpConfig::with_ecn(EcnMode::Dctcp),
    );
    let mut sim = Simulation::new(net, app);
    let report = sim.run();
    assert!(report.app_done);
    assert_eq!(sim.net.total_bytes_received(), 1_000_000);
    assert_eq!(sim.net.orphan_packets(), 0);
}

#[test]
fn terasort_through_facade() {
    let spec = ClusterSpec {
        racks: 2,
        hosts_per_rack: 2,
        host_link: LinkSpec::gbps(1, 5),
        uplink: LinkSpec::gbps(10, 5),
        switch_qdisc: QdiscSpec::DropTail {
            capacity_packets: 100,
        },
        host_buffer_packets: 2000,
        seed: 5,
    };
    let n = spec.total_hosts();
    let job = JobSpec::small(1_000_000, TcpConfig::default());
    let net = Network::new(spec);
    let app = TerasortJob::new(job, n);
    let mut sim = Simulation::new(net, app);
    let report = sim.run();
    assert!(report.app_done);
    let res = sim.app.result();
    assert_eq!(res.flows, (n * (n - 1)) as u64);
    assert!(res.runtime > res.shuffle_done);
}

#[test]
fn whole_stack_determinism() {
    let go = || {
        let net = Network::new(marking_rack(6, 15, 77));
        let mut pairs = Vec::new();
        for s in 0..6u32 {
            for d in 0..6u32 {
                if s != d {
                    pairs.push((NodeId(s), NodeId(d), 150_000));
                }
            }
        }
        let app = StaticFlows::all_at_zero(pairs, TcpConfig::with_ecn(EcnMode::Dctcp));
        let mut sim = Simulation::new(net, app);
        let report = sim.run();
        (
            report.events,
            report.end_time,
            sim.net.latency().count(),
            sim.net.latency().mean().as_nanos(),
            sim.net.port_stats().total.marked.total(),
        )
    };
    assert_eq!(go(), go());
}

#[test]
fn different_seeds_differ() {
    let go = |seed: u64| {
        let net = Network::new(ClusterSpec::single_rack(
            4,
            LinkSpec::gbps(1, 5),
            QdiscSpec::Red(RedConfig::from_target_delay(
                SimDuration::from_micros(300),
                1_000_000_000,
                1526,
                100,
                ProtectionMode::Default,
            )),
            seed,
        ));
        let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 400_000)).collect();
        let app = StaticFlows::all_at_zero(pairs, TcpConfig::with_ecn(EcnMode::Ecn));
        let mut sim = Simulation::new(net, app);
        sim.run();
        sim.net.latency().mean().as_nanos()
    };
    // RED's probabilistic decisions depend on the cluster seed.
    assert_ne!(go(1), go(2));
}

#[test]
fn ecn_tables_exposed_by_experiments() {
    let t1 = experiments::figures::table1();
    let t2 = experiments::figures::table2();
    assert!(t1.contains("ECN-Echo"));
    assert!(t2.contains("ECT(1)"));
}

#[test]
fn three_transports_complete_identical_workload() {
    for mode in [EcnMode::Off, EcnMode::Ecn, EcnMode::Dctcp] {
        let net = Network::new(marking_rack(4, 20, 9));
        let pairs: Vec<_> = (1..4).map(|i| (NodeId(i), NodeId(0), 300_000)).collect();
        let app = StaticFlows::all_at_zero(pairs, TcpConfig::with_ecn(mode));
        let mut sim = Simulation::new(net, app);
        let report = sim.run();
        assert!(report.app_done, "{mode:?} must complete");
        assert_eq!(sim.net.total_bytes_received(), 3 * 300_000, "{mode:?}");
    }
}
