//! Trait-refactor equivalence: the sender refactored onto `simcc`'s
//! `CongestionController` trait must be **byte-identical** to the pre-refactor
//! hardwired Reno/DCTCP paths.
//!
//! The `legacy` module below is a frozen snapshot of `tcpstack::sender` as it
//! stood immediately before the congestion-control logic moved behind the
//! trait (including the RTO-backoff bugfixes that land in the same change, so
//! this property isolates exactly the refactor). Tracing is stripped from the
//! snapshot — `set_trace` never changes protocol behaviour, and trace-level
//! byte-identity is separately pinned by `experiments/tests/pooled_identity.rs`
//! and the CI trace-determinism job — so the property here compares the full
//! *protocol* surface: every emitted packet, cwnd/ssthresh/alpha, counters,
//! timers and completion times over adversarial ACK/ECE/SACK/timeout scripts.

use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, SackBlocks, TcpFlags};
use proptest::prelude::*;
use simevent::{SimDuration, SimTime};
use tcpstack::{EcnMode, SenderStats, TcpAgent, TcpConfig};

mod legacy {
    //! Pre-refactor sender, verbatim minus tracing. Do not "fix" or extend
    //! this copy: its whole value is staying frozen.

    use netpacket::{EcnCodepoint, FlowId, NodeId, Packet, PacketId, TcpFlags};
    use simevent::SimTime;
    use tcpstack::{EcnMode, IntervalSet, RttEstimator, SenderStats, TcpConfig};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum State {
        SynSent,
        Established,
        Complete,
    }

    #[derive(Debug, Clone, Copy)]
    struct CongState {
        snd_una: u64,
        cwnd: f64,
        ssthresh: f64,
        dupacks: u32,
        cwr_end: u64,
        alpha: f64,
        ce_acked: u64,
        window_acked: u64,
        alpha_end: u64,
    }

    #[derive(Debug)]
    pub struct LegacySender {
        cfg: TcpConfig,
        flow: FlowId,
        src: NodeId,
        dst: NodeId,
        total: u64,
        state: State,
        cong: CongState,
        snd_nxt: u64,
        in_recovery: bool,
        recover: u64,
        rtt: RttEstimator,
        rto_deadline: Option<SimTime>,
        rtt_sample: Option<(u64, SimTime)>,
        ecn_on: bool,
        send_cwr: bool,
        max_sent: u64,
        sacked: IntervalSet,
        retx_point: u64,
        outbox: Vec<Packet>,
        pkt_counter: u32,
        stats: SenderStats,
        completed_at: Option<SimTime>,
    }

    impl LegacySender {
        pub fn new(
            flow: FlowId,
            src: NodeId,
            dst: NodeId,
            total_bytes: u64,
            cfg: TcpConfig,
            now: SimTime,
        ) -> Self {
            cfg.validate();
            let cwnd = (cfg.init_cwnd_segments as f64) * cfg.mss as f64;
            let ssthresh = cfg.recv_wnd as f64;
            let rtt = RttEstimator::new(cfg.initial_rto, cfg.min_rto, cfg.max_rto);
            let mut s = LegacySender {
                cfg,
                flow,
                src,
                dst,
                total: total_bytes,
                state: State::SynSent,
                cong: CongState {
                    snd_una: 0,
                    cwnd,
                    ssthresh,
                    dupacks: 0,
                    cwr_end: 0,
                    alpha: 1.0,
                    ce_acked: 0,
                    window_acked: 0,
                    alpha_end: 1,
                },
                snd_nxt: 1,
                in_recovery: false,
                recover: 0,
                rtt,
                rto_deadline: None,
                rtt_sample: None,
                ecn_on: false,
                send_cwr: false,
                max_sent: 1,
                sacked: IntervalSet::new(),
                retx_point: 1,
                outbox: Vec::new(),
                pkt_counter: 0,
                stats: SenderStats::default(),
                completed_at: None,
            };
            s.send_syn(now);
            s
        }

        pub fn cwnd(&self) -> f64 {
            self.cong.cwnd
        }

        pub fn ssthresh(&self) -> f64 {
            self.cong.ssthresh
        }

        pub fn alpha(&self) -> f64 {
            self.cong.alpha
        }

        pub fn stats(&self) -> &SenderStats {
            &self.stats
        }

        pub fn bytes_acked(&self) -> u64 {
            self.cong.snd_una.saturating_sub(1).min(self.total)
        }

        pub fn completed_at(&self) -> Option<SimTime> {
            self.completed_at
        }

        pub fn is_complete(&self) -> bool {
            self.state == State::Complete
        }

        pub fn next_deadline(&self) -> Option<SimTime> {
            self.rto_deadline
        }

        pub fn take_outbox(&mut self) -> Vec<Packet> {
            std::mem::take(&mut self.outbox)
        }

        fn has_outstanding(&self) -> bool {
            self.snd_nxt > self.cong.snd_una
        }

        fn next_id(&mut self) -> PacketId {
            self.pkt_counter += 1;
            PacketId((self.flow.0 << 20) | self.pkt_counter as u64)
        }

        fn send_syn(&mut self, now: SimTime) {
            let flags = if self.cfg.ecn.uses_ecn() {
                TcpFlags::ecn_setup_syn()
            } else {
                TcpFlags::SYN
            };
            let ecn = if self.cfg.ect_control_packets && self.cfg.ecn.uses_ecn() {
                EcnCodepoint::Ect0
            } else {
                EcnCodepoint::NotEct
            };
            let pkt = Packet {
                id: self.next_id(),
                flow: self.flow,
                src: self.src,
                dst: self.dst,
                seq: 0,
                ack: 0,
                payload: 0,
                flags,
                ecn,
                sack: netpacket::SackBlocks::EMPTY,
                sent_at: now,
            };
            self.outbox.push(pkt);
            self.rto_deadline = Some(now + self.rtt.rto());
        }

        fn send_handshake_ack(&mut self, now: SimTime) {
            let ecn = if self.cfg.ect_control_packets && self.ecn_on {
                EcnCodepoint::Ect0
            } else {
                EcnCodepoint::NotEct
            };
            let pkt = Packet {
                id: self.next_id(),
                flow: self.flow,
                src: self.src,
                dst: self.dst,
                seq: self.snd_nxt,
                ack: 1,
                payload: 0,
                flags: TcpFlags::ACK,
                ecn,
                sack: netpacket::SackBlocks::EMPTY,
                sent_at: now,
            };
            self.outbox.push(pkt);
        }

        fn emit_data(&mut self, seq: u64, len: u32, now: SimTime, is_retransmit: bool) {
            let mut flags = TcpFlags::ACK;
            if self.send_cwr && self.ecn_on {
                flags.insert(TcpFlags::CWR);
            }
            let ecn = if self.ecn_on {
                EcnCodepoint::Ect0
            } else {
                EcnCodepoint::NotEct
            };
            let pkt = Packet {
                id: self.next_id(),
                flow: self.flow,
                src: self.src,
                dst: self.dst,
                seq,
                ack: 1,
                payload: len,
                flags,
                ecn,
                sack: netpacket::SackBlocks::EMPTY,
                sent_at: now,
            };
            self.outbox.push(pkt);
            self.stats.data_segments_sent += 1;
            if is_retransmit {
                self.stats.retransmits += 1;
                self.rtt_sample = None;
            } else if self.rtt_sample.is_none() {
                self.rtt_sample = Some((seq + len as u64, now));
            }
            if self.rto_deadline.is_none() {
                self.rto_deadline = Some(now + self.rtt.rto());
            }
        }

        fn mss_f(&self) -> f64 {
            self.cfg.mss as f64
        }

        fn flight(&self) -> u64 {
            self.snd_nxt - self.cong.snd_una
        }

        fn usable_window(&self) -> f64 {
            self.cong.cwnd.min(self.cfg.recv_wnd as f64)
        }

        fn maybe_ecn_react(&mut self, ack: u64) {
            if !self.ecn_on || self.in_recovery {
                return;
            }
            if ack <= self.cong.cwr_end {
                return;
            }
            match self.cfg.ecn {
                EcnMode::Ecn => {
                    self.cong.ssthresh = (self.cong.cwnd / 2.0).max(2.0 * self.mss_f());
                    self.cong.cwnd = self.cong.ssthresh;
                }
                EcnMode::Dctcp => {
                    self.cong.cwnd =
                        (self.cong.cwnd * (1.0 - self.cong.alpha / 2.0)).max(self.mss_f());
                    self.cong.ssthresh = self.cong.cwnd;
                }
                EcnMode::Off => return,
            }
            self.cong.cwr_end = self.snd_nxt;
            self.send_cwr = true;
            self.stats.ecn_reductions += 1;
        }

        fn dctcp_account(&mut self, newly: u64, ece: bool, ack: u64) {
            if self.cfg.ecn != EcnMode::Dctcp {
                return;
            }
            self.cong.window_acked += newly;
            if ece {
                self.cong.ce_acked += newly;
            }
            if ack >= self.cong.alpha_end {
                if self.cong.window_acked > 0 {
                    let f = self.cong.ce_acked as f64 / self.cong.window_acked as f64;
                    let g = self.cfg.dctcp_g;
                    self.cong.alpha = (1.0 - g) * self.cong.alpha + g * f;
                }
                self.cong.ce_acked = 0;
                self.cong.window_acked = 0;
                self.cong.alpha_end = self.snd_nxt;
            }
        }

        fn on_new_ack(&mut self, ack: u64, ece: bool, now: SimTime) {
            self.rtt.reset_backoff();
            if self.send_cwr && ack > self.cong.cwr_end {
                self.send_cwr = false;
            }
            self.snd_nxt = self.snd_nxt.max(ack);
            let newly = ack - self.cong.snd_una;
            self.dctcp_account(newly, ece, ack);
            if ece {
                self.maybe_ecn_react(ack);
            }
            if let Some((need, sent)) = self.rtt_sample {
                if ack >= need {
                    self.rtt.sample(now.since(sent));
                    self.rtt_sample = None;
                }
            }
            self.sacked.prune_below(ack);
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.cong.cwnd = self.cong.ssthresh;
                    self.cong.dupacks = 0;
                    self.cong.snd_una = ack;
                } else {
                    self.cong.snd_una = ack;
                    self.retx_point = self.retx_point.max(ack);
                    self.cong.cwnd =
                        (self.cong.cwnd - newly as f64 + self.mss_f()).max(self.mss_f());
                    let _ = self.retransmit_next_hole(now);
                }
            } else {
                self.cong.dupacks = 0;
                self.cong.snd_una = ack;
                if self.cong.cwnd < self.cong.ssthresh {
                    self.cong.cwnd += self.mss_f().min(newly as f64);
                } else {
                    self.cong.cwnd += self.mss_f() * self.mss_f() / self.cong.cwnd;
                }
            }
            if self.has_outstanding() {
                self.rto_deadline = Some(now + self.rtt.rto());
            } else {
                self.rto_deadline = None;
            }
            if self.cong.snd_una > self.total {
                self.state = State::Complete;
                self.rto_deadline = None;
                if self.completed_at.is_none() {
                    self.completed_at = Some(now);
                }
            }
        }

        fn on_dup_ack(&mut self, ece: bool, now: SimTime) {
            if !self.has_outstanding() {
                return;
            }
            if ece {
                self.maybe_ecn_react(self.cong.snd_una);
            }
            if self.in_recovery {
                self.cong.cwnd += self.mss_f();
                if self.cfg.sack && !self.sacked.is_empty() && self.retransmit_next_hole(now) {
                    self.cong.cwnd -= self.mss_f();
                }
                return;
            }
            self.cong.dupacks += 1;
            if self.cong.dupacks < 3 {
                self.limited_transmit(now);
                return;
            }
            if self.cong.dupacks == 3 {
                if self.cfg.sack
                    && self.stats.fast_retransmits > 0
                    && self.cong.snd_una <= self.recover
                    && self.sacked.is_empty()
                {
                    return;
                }
                self.cong.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.mss_f());
                self.cong.cwnd = self.cong.ssthresh + 3.0 * self.mss_f();
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.retx_point = self.cong.snd_una;
                self.stats.fast_retransmits += 1;
                let _ = self.retransmit_next_hole(now);
            }
        }

        fn limited_transmit(&mut self, now: SimTime) {
            if self.state != State::Established || self.snd_nxt > self.total {
                return;
            }
            if self.flight() + self.cfg.mss as u64 > self.cfg.recv_wnd {
                return;
            }
            let remaining = self.total + 1 - self.snd_nxt;
            let seg = (self.cfg.mss as u64).min(remaining) as u32;
            let seq = self.snd_nxt;
            self.snd_nxt += seg as u64;
            let is_retransmit = seq < self.max_sent;
            self.max_sent = self.max_sent.max(self.snd_nxt);
            self.emit_data(seq, seg, now, is_retransmit);
        }

        fn retransmit_next_hole(&mut self, now: SimTime) -> bool {
            let seq = if self.cfg.sack {
                self.sacked
                    .first_uncovered(self.retx_point.max(self.cong.snd_una).max(1))
            } else {
                self.cong.snd_una.max(1)
            };
            if seq > self.total || seq >= self.recover.max(self.cong.snd_una + 1) {
                return false;
            }
            if self.cfg.sack && !self.sacked.is_empty() {
                let highest = self.sacked.max_covered().unwrap_or(0);
                if seq >= highest && seq != self.cong.snd_una {
                    return false;
                }
            }
            let mut len = (self.cfg.mss as u64).min(self.total + 1 - seq);
            if self.cfg.sack {
                if let Some(island) = self.sacked.next_covered_after(seq) {
                    len = len.min(island - seq);
                }
            }
            self.retx_point = seq + len;
            self.emit_data(seq, len as u32, now, true);
            self.rto_deadline = Some(now + self.rtt.rto());
            true
        }

        fn try_send(&mut self, now: SimTime) {
            if self.state != State::Established {
                return;
            }
            loop {
                if self.snd_nxt > self.total {
                    break;
                }
                let remaining = self.total + 1 - self.snd_nxt;
                let seg = (self.cfg.mss as u64).min(remaining) as u32;
                let win = self.usable_window();
                let fits = (self.flight() + seg as u64) as f64 <= win;
                if !fits && (self.flight() != 0) {
                    break;
                }
                let seq = self.snd_nxt;
                self.snd_nxt += seg as u64;
                let is_retransmit = seq < self.max_sent;
                self.max_sent = self.max_sent.max(self.snd_nxt);
                self.emit_data(seq, seg, now, is_retransmit);
                if !fits {
                    break;
                }
            }
        }

        fn handle_timeout(&mut self, now: SimTime) {
            match self.state {
                State::SynSent => {
                    self.stats.syn_retransmits += 1;
                    self.rtt.back_off();
                    let flags = if self.cfg.ecn.uses_ecn() {
                        TcpFlags::ecn_setup_syn()
                    } else {
                        TcpFlags::SYN
                    };
                    let id = self.next_id();
                    let pkt = Packet {
                        id,
                        flow: self.flow,
                        src: self.src,
                        dst: self.dst,
                        seq: 0,
                        ack: 0,
                        payload: 0,
                        flags,
                        ecn: EcnCodepoint::NotEct,
                        sack: netpacket::SackBlocks::EMPTY,
                        sent_at: now,
                    };
                    self.outbox.push(pkt);
                    self.rto_deadline = Some(now + self.rtt.rto());
                }
                State::Established => {
                    if !self.has_outstanding() {
                        self.rto_deadline = None;
                        return;
                    }
                    self.stats.timeouts += 1;
                    self.cong.ssthresh = (self.flight() as f64 / 2.0).max(2.0 * self.mss_f());
                    self.cong.cwnd = self.mss_f();
                    self.in_recovery = false;
                    self.cong.dupacks = 0;
                    self.retx_point = self.cong.snd_una;
                    self.snd_nxt = self.cong.snd_una.max(1);
                    self.rtt.back_off();
                    self.rtt_sample = None;
                    self.rto_deadline = Some(now + self.rtt.rto());
                    self.try_send(now);
                }
                State::Complete => {
                    self.rto_deadline = None;
                }
            }
        }

        pub fn on_segment(&mut self, pkt: &Packet, now: SimTime) {
            match self.state {
                State::SynSent => {
                    if pkt.is_syn_ack() && pkt.ack >= 1 {
                        self.ecn_on = self.cfg.ecn.uses_ecn() && pkt.flags.contains(TcpFlags::ECE);
                        self.cong.snd_una = 1;
                        self.state = State::Established;
                        self.rto_deadline = None;
                        self.rtt.reset_backoff();
                        self.send_handshake_ack(now);
                        if self.total == 0 {
                            self.state = State::Complete;
                            self.completed_at = Some(now);
                        } else {
                            self.try_send(now);
                        }
                    }
                }
                State::Established => {
                    if pkt.is_syn_ack() {
                        self.send_handshake_ack(now);
                        return;
                    }
                    if !pkt.flags.contains(TcpFlags::ACK) {
                        return;
                    }
                    if self.cfg.sack {
                        for (bs, be) in pkt.sack.iter() {
                            let bs = bs.max(self.cong.snd_una);
                            let be = be.min(self.max_sent);
                            self.sacked.insert(bs, be);
                        }
                    }
                    let ece = pkt.flags.contains(TcpFlags::ECE);
                    if ece {
                        self.stats.ece_acks += 1;
                    }
                    if pkt.ack > self.max_sent {
                        return;
                    }
                    if pkt.ack > self.cong.snd_una {
                        self.on_new_ack(pkt.ack, ece, now);
                        self.try_send(now);
                    } else if pkt.ack == self.cong.snd_una {
                        self.on_dup_ack(ece, now);
                        self.try_send(now);
                    }
                }
                State::Complete => {}
            }
        }

        pub fn on_timer(&mut self, now: SimTime) {
            if let Some(d) = self.rto_deadline {
                if now >= d {
                    self.handle_timeout(now);
                }
            }
        }
    }
}

const MSS: u64 = 1460;

fn syn_ack(ecn: bool) -> Packet {
    Packet {
        id: PacketId(900),
        flow: FlowId(1),
        src: NodeId(1),
        dst: NodeId(0),
        seq: 0,
        ack: 1,
        payload: 0,
        flags: if ecn {
            TcpFlags::ecn_setup_syn_ack()
        } else {
            TcpFlags::SYN | TcpFlags::ACK
        },
        ecn: EcnCodepoint::NotEct,
        sack: SackBlocks::EMPTY,
        sent_at: SimTime::ZERO,
    }
}

fn ack_pkt(ackno: u64, ece: bool, sack: SackBlocks) -> Packet {
    let mut flags = TcpFlags::ACK;
    if ece {
        flags.insert(TcpFlags::ECE);
    }
    Packet {
        id: PacketId(901),
        flow: FlowId(1),
        src: NodeId(1),
        dst: NodeId(0),
        seq: 1,
        ack: ackno,
        payload: 0,
        flags,
        ecn: EcnCodepoint::NotEct,
        sack,
        sent_at: SimTime::ZERO,
    }
}

/// One scripted step applied identically to both senders.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Cumulative ACK advancing `k` segments past the current ack level
    /// (clamped to the highest byte actually sent).
    Advance { k: u64, ece: bool },
    /// Duplicate ACK at the current ack level, optionally SACKing `len`
    /// segments starting `off` segments above it.
    Dup { ece: bool, off: u64, len: u64 },
    /// Fire the retransmission timer at its deadline, if armed.
    Timer,
    /// ACK everything transmitted so far.
    AckAll { ece: bool },
}

/// Drives the legacy snapshot and the trait-based sender through the same
/// script, asserting identical packets after every step and identical final
/// state. Returns an error message on the first divergence.
fn run_script(
    ecn: EcnMode,
    sack: bool,
    total: u64,
    steps: &[Step],
    syn_ack_after: usize,
) -> Result<(), String> {
    let cfg = TcpConfig {
        sack,
        ..TcpConfig::with_ecn(ecn)
    };
    let mut now = SimTime::ZERO;
    let mut old =
        legacy::LegacySender::new(FlowId(1), NodeId(0), NodeId(1), total, cfg.clone(), now);
    let mut new = tcpstack::Sender::new(FlowId(1), NodeId(0), NodeId(1), total, cfg, now);

    // Tracks the stimulus state from the legacy sender's emissions; the
    // per-step packet equality below guarantees the new sender saw the same.
    let mut cum_ack = 1u64; // receiver's cumulative ack level
    let mut high_sent = 0u64; // highest data byte + 1 observed on the wire

    let check = |old: &mut legacy::LegacySender,
                 new: &mut tcpstack::Sender,
                 step: usize,
                 high_sent: &mut u64|
     -> Result<(), String> {
        let po = old.take_outbox();
        let pn = new.take_outbox();
        if po != pn {
            return Err(format!(
                "step {step}: outbox diverged\nold: {po:?}\nnew: {pn:?}"
            ));
        }
        for p in &po {
            if p.payload > 0 {
                *high_sent = (*high_sent).max(p.seq + p.payload as u64);
            }
        }
        if old.next_deadline() != new.next_deadline() {
            return Err(format!(
                "step {step}: deadline diverged: {:?} vs {:?}",
                old.next_deadline(),
                new.next_deadline()
            ));
        }
        Ok(())
    };
    check(&mut old, &mut new, usize::MAX, &mut high_sent)?;

    // Optionally let the SYN time out a few times before delivering the
    // SYN-ACK, covering the SYN-retransmission + backoff-reset path.
    for i in 0..syn_ack_after {
        if let Some(d) = old.next_deadline() {
            now = d;
            old.on_timer(now);
            new.on_timer(now);
            check(&mut old, &mut new, i, &mut high_sent)?;
        }
    }
    now += SimDuration::from_micros(100);
    old.on_segment(&syn_ack(ecn.uses_ecn()), now);
    new.on_segment(&syn_ack(ecn.uses_ecn()), now);
    check(&mut old, &mut new, usize::MAX - 1, &mut high_sent)?;

    for (i, step) in steps.iter().enumerate() {
        now += SimDuration::from_micros(137);
        match *step {
            Step::Advance { k, ece } => {
                let target = (cum_ack + k * MSS).min(high_sent.max(cum_ack));
                if target > cum_ack {
                    cum_ack = target;
                }
                let pkt = ack_pkt(cum_ack, ece, SackBlocks::EMPTY);
                old.on_segment(&pkt, now);
                new.on_segment(&pkt, now);
            }
            Step::Dup { ece, off, len } => {
                let mut blocks = SackBlocks::EMPTY;
                if sack && len > 0 {
                    let bs = cum_ack + off * MSS;
                    let be = (bs + len * MSS).min(high_sent.max(bs));
                    if be > bs {
                        blocks.push(bs, be);
                    }
                }
                let pkt = ack_pkt(cum_ack, ece, blocks);
                old.on_segment(&pkt, now);
                new.on_segment(&pkt, now);
            }
            Step::Timer => {
                if let Some(d) = old.next_deadline() {
                    now = now.max(d);
                    old.on_timer(now);
                    new.on_timer(now);
                }
            }
            Step::AckAll { ece } => {
                if high_sent > cum_ack {
                    cum_ack = high_sent;
                }
                let pkt = ack_pkt(cum_ack, ece, SackBlocks::EMPTY);
                old.on_segment(&pkt, now);
                new.on_segment(&pkt, now);
            }
        }
        check(&mut old, &mut new, i, &mut high_sent)?;
    }

    // Final protocol state must match exactly (bitwise for the f64 surface).
    if old.cwnd().to_bits() != new.cwnd().to_bits() {
        return Err(format!("cwnd diverged: {} vs {}", old.cwnd(), new.cwnd()));
    }
    if old.ssthresh().to_bits() != new.ssthresh().to_bits() {
        return Err(format!(
            "ssthresh diverged: {} vs {}",
            old.ssthresh(),
            new.ssthresh()
        ));
    }
    if old.alpha().to_bits() != new.alpha().to_bits() {
        return Err(format!(
            "alpha diverged: {} vs {}",
            old.alpha(),
            new.alpha()
        ));
    }
    let so: SenderStats = *old.stats();
    let sn: SenderStats = *new.stats();
    // The refactor adds the cc_fallbacks counter; Reno/DCTCP never set it.
    if sn.cc_fallbacks != 0 {
        return Err("Reno/DCTCP must never count a classic-AQM fallback".into());
    }
    let masked = SenderStats {
        cc_fallbacks: so.cc_fallbacks,
        ..sn
    };
    if so != masked {
        return Err(format!("stats diverged: {so:?} vs {sn:?}"));
    }
    if old.bytes_acked() != new.bytes_acked() {
        return Err("bytes_acked diverged".into());
    }
    if old.completed_at() != new.completed_at() || old.is_complete() != new.is_complete() {
        return Err("completion diverged".into());
    }
    Ok(())
}

fn decode_steps(raw: &[(u8, u8, u8)]) -> Vec<Step> {
    raw.iter()
        .map(|&(op, a, b)| match op % 8 {
            0..=2 => Step::Advance {
                k: (a % 4) as u64 + 1,
                ece: b % 4 == 0,
            },
            3 | 4 => Step::Dup {
                ece: b % 5 == 0,
                off: (a % 6) as u64 + 1,
                len: (b % 3) as u64 + 1,
            },
            5 => Step::Timer,
            _ => Step::AckAll { ece: b % 7 == 0 },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trait_sender_matches_legacy_snapshot(
        mode in 0u8..3,
        sack in proptest::arbitrary::any::<bool>(),
        total_segs in 1u64..200,
        syn_ack_after in 0usize..3,
        raw in proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 1..60),
    ) {
        let ecn = [EcnMode::Off, EcnMode::Ecn, EcnMode::Dctcp][mode as usize];
        let steps = decode_steps(&raw);
        let total = total_segs * MSS + (total_segs % 7) * 100;
        if let Err(e) = run_script(ecn, sack, total, &steps, syn_ack_after) {
            prop_assert!(false, "{}", e);
        }
    }
}

/// A fixed long deterministic script as a plain test, so plain `cargo test`
/// exercises the equivalence even when the proptest stub picks few cases.
#[test]
fn fixed_adversarial_script_matches() {
    let steps = [
        Step::Advance { k: 2, ece: false },
        Step::Dup {
            ece: false,
            off: 1,
            len: 2,
        },
        Step::Dup {
            ece: false,
            off: 2,
            len: 1,
        },
        Step::Dup {
            ece: true,
            off: 1,
            len: 3,
        },
        Step::Advance { k: 1, ece: true },
        Step::Timer,
        Step::Advance { k: 3, ece: false },
        Step::Dup {
            ece: false,
            off: 3,
            len: 2,
        },
        Step::Dup {
            ece: false,
            off: 1,
            len: 1,
        },
        Step::Dup {
            ece: false,
            off: 2,
            len: 2,
        },
        Step::Advance { k: 2, ece: true },
        Step::Timer,
        Step::Timer,
        Step::AckAll { ece: false },
        Step::Advance { k: 4, ece: false },
        Step::AckAll { ece: true },
    ];
    for ecn in [EcnMode::Off, EcnMode::Ecn, EcnMode::Dctcp] {
        for sack in [false, true] {
            run_script(ecn, sack, 64 * MSS, &steps, 1).unwrap_or_else(|e| {
                panic!("ecn {ecn:?} sack {sack}: {e}");
            });
        }
    }
}
