//! Stable priority queue of timestamped events.

use crate::handle::{CancelSet, TimerHandle};
use crate::tiebreak::TieBreak;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus the instant it fires, a monotone sequence number, and the
/// tie key derived from it. Under the default [`TieBreak::Fifo`] policy
/// `tie == seq`, so same-instant events pop in the order they were scheduled
/// (FIFO), which is what keeps whole simulations deterministic. Cancellation
/// identity always stays on `seq`; only same-instant ordering uses `tie`.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Scheduling order; the cancellation/bookkeeping identity.
    pub seq: u64,
    /// Same-instant ordering key ([`TieBreak::key`] of `seq`).
    pub tie: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, at equal
        // times, the smallest tie key) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

/// The operations a deterministic event queue must provide, implemented by
/// both the reference [`EventQueue`] (binary heap) and the fast-path
/// [`CalendarQueue`](crate::CalendarQueue) (time-bucketed calendar).
///
/// The contract, which the cross-backend proptests enforce: pops are globally
/// ordered by `(time, schedule order)`; cancellation is O(1) lazy deletion
/// with live [`len`](Self::len) accounting; two backends fed the same
/// operation sequence pop the same event sequence and return the same
/// cancellation results.
pub trait QueueBackend<E> {
    /// An empty queue using the default FIFO tie-break.
    fn empty() -> Self
    where
        Self: Sized,
    {
        Self::with_tie_break(TieBreak::Fifo)
    }
    /// An empty queue ordering same-instant events by `tie_break`.
    fn with_tie_break(tie_break: TieBreak) -> Self;
    /// Schedule `event` at absolute time `at` (not cancellable, no overhead).
    fn schedule(&mut self, at: SimTime, event: E) {
        self.schedule_in_lane(at, 0, event);
    }
    /// Schedule `event` at `at` and return a handle that can cancel it.
    fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_in_lane(at, 0, event)
    }
    /// Like [`schedule`](Self::schedule), tagging the event with the lane
    /// (handling entity) used by [`TieBreak::Permuted`] same-instant
    /// ordering. Under [`TieBreak::Fifo`] the lane is ignored.
    fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E);
    /// Like [`schedule_cancellable`](Self::schedule_cancellable) with a lane.
    fn schedule_cancellable_in_lane(&mut self, at: SimTime, lane: u64, event: E) -> TimerHandle;
    /// Cancel a previously scheduled event. `false` if it already fired or
    /// was already cancelled.
    fn cancel(&mut self, handle: TimerHandle) -> bool;
    /// Remove and return the earliest live event, if any.
    fn pop(&mut self) -> Option<(SimTime, E)>;
    /// The firing time of the earliest live pending event.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of live pending events (cancelled events excluded).
    fn len(&self) -> usize;
    /// True when no live events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total events ever scheduled on this queue (monotone; survives
    /// [`clear`](Self::clear)).
    fn scheduled_total(&self) -> u64;
    /// Drop all pending events. Does not reset `scheduled_total`.
    fn clear(&mut self);
    /// Release excess capacity after a burst, including any physical storage
    /// still held by lazily-cancelled events. Semantically a no-op: live
    /// events, pop order, and counters are unaffected.
    fn shrink_to_fit(&mut self) {}
}

/// A deterministic event queue (reference implementation, binary heap).
///
/// Events are popped in nondecreasing time order; events scheduled for the
/// same instant are popped in scheduling order. This is the semantically
/// obvious implementation the calendar queue is checked against; the hot
/// simulation path uses [`CalendarQueue`](crate::CalendarQueue).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    scheduled_total: u64,
    cancels: CancelSet,
    tie_break: TieBreak,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue (FIFO tie-break).
    pub fn new() -> Self {
        Self::with_tie_break(TieBreak::Fifo)
    }

    /// An empty queue ordering same-instant events by `tie_break`.
    pub fn with_tie_break(tie_break: TieBreak) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
            cancels: CancelSet::default(),
            tie_break,
        }
    }

    /// An empty queue with room for `cap` events before reallocating.
    ///
    /// `cap` is a lower bound on the initial allocation, not a limit: the
    /// queue grows past it transparently, and [`capacity`](Self::capacity)
    /// may report more than requested. Counters (`scheduled_total`, `seq`)
    /// start at zero exactly as with [`new`](Self::new).
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
            cancels: CancelSet::default(),
            tie_break: TieBreak::Fifo,
        }
    }

    /// Events the queue can hold before reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Release excess capacity after a burst (e.g. between sweep points).
    ///
    /// Cancelled-but-unreaped events are physically dropped first: they are
    /// dead weight the allocator would otherwise keep sized for, and leaving
    /// them in place made post-shrink capacity (and the pending-accounting
    /// derived from it) report a stale burst high-water mark. Compaction
    /// never changes pop order — only tombstones are removed.
    pub fn shrink_to_fit(&mut self) {
        if self.cancels.pending_cancelled() > 0 {
            let live: Vec<ScheduledEvent<E>> = std::mem::take(&mut self.heap)
                .into_iter()
                .filter(|se| {
                    if self.cancels.is_cancelled(se.seq) {
                        self.cancels.reap(se.seq);
                        false
                    } else {
                        true
                    }
                })
                .collect();
            self.heap = BinaryHeap::from(live);
        }
        self.heap.shrink_to_fit();
    }

    fn push(&mut self, at: SimTime, lane: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        let tie = self.tie_break.key(seq, lane);
        self.heap.push(ScheduledEvent {
            at,
            seq,
            tie,
            event,
        });
        seq
    }

    /// Schedule `event` to fire at absolute time `at` (default lane 0).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.push(at, 0, event);
    }

    /// Schedule `event` at `at` in `lane` (the handling entity, used by
    /// [`TieBreak::Permuted`] same-instant ordering; ignored under FIFO).
    pub fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        self.push(at, lane, event);
    }

    /// Schedule `event` at `at`, returning a cancellation handle.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> TimerHandle {
        self.schedule_cancellable_in_lane(at, 0, event)
    }

    /// Cancellable scheduling with an explicit lane.
    pub fn schedule_cancellable_in_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        event: E,
    ) -> TimerHandle {
        let seq = self.push(at, lane, event);
        self.cancels.register(seq)
    }

    /// Cancel a pending event (lazy deletion: it is skipped when popped).
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        self.cancels.cancel(handle)
    }

    /// Remove and return the earliest live event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(se) = self.heap.pop() {
            if self.cancels.reap(se.seq) {
                continue;
            }
            // Pop-is-minimum invariant: nothing still queued may fire before
            // the event we just removed (debug builds only).
            debug_assert!(
                self.peek_time().is_none_or(|next| se.at <= next),
                "EventQueue popped an event later than the remaining head"
            );
            return Some((se.at, se.event));
        }
        None
    }

    /// The firing time of the earliest live pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let head = self.heap.peek()?;
        if !self.cancels.is_cancelled(head.seq) {
            return Some(head.at);
        }
        // Rare path: the head is a lazily-deleted timer; fall back to a scan
        // over live events rather than mutating from a peek.
        self.heap
            .iter()
            .filter(|se| !self.cancels.is_cancelled(se.seq))
            .map(|se| se.at)
            .min()
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancels.pending_cancelled()
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever scheduled on this queue.
    ///
    /// Monotone over the queue's lifetime: unaffected by pops, cancellations,
    /// and [`clear`](Self::clear).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events (keeps `scheduled_total` and the seq counter).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancels.clear();
    }
}

impl<E> QueueBackend<E> for EventQueue<E> {
    fn with_tie_break(tie_break: TieBreak) -> Self {
        EventQueue::with_tie_break(tie_break)
    }
    fn schedule_in_lane(&mut self, at: SimTime, lane: u64, event: E) {
        EventQueue::schedule_in_lane(self, at, lane, event);
    }
    fn schedule_cancellable_in_lane(&mut self, at: SimTime, lane: u64, event: E) -> TimerHandle {
        EventQueue::schedule_cancellable_in_lane(self, at, lane, event)
    }
    fn cancel(&mut self, handle: TimerHandle) -> bool {
        EventQueue::cancel(self, handle)
    }
    fn pop(&mut self) -> Option<(SimTime, E)> {
        EventQueue::pop(self)
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
    fn clear(&mut self) {
        EventQueue::clear(self);
    }
    fn shrink_to_fit(&mut self) {
        EventQueue::shrink_to_fit(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 'c');
        q.schedule(SimTime::from_nanos(10), 'a');
        q.schedule(SimTime::from_nanos(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), 5u64);
        q.schedule(SimTime::from_nanos(1), 1u64);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(SimTime::from_nanos(3), 3u64);
        q.schedule(SimTime::from_nanos(2), 2u64);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(42));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        for i in 0..10u64 {
            q.schedule(SimTime::ZERO + SimDuration::from_nanos(i), i);
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.scheduled_total(), 10);
        q.pop();
        assert_eq!(q.len(), 9);
        assert_eq!(q.scheduled_total(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 10);
    }

    #[test]
    fn scheduled_total_survives_clear_and_keeps_counting() {
        // Regression: `scheduled_total` is a lifetime counter, not a gauge.
        // It must neither reset on clear() nor double-count cancellations.
        let mut q = EventQueue::new();
        for i in 0..5u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        let h = q.schedule_cancellable(SimTime::from_nanos(99), 99);
        assert!(q.cancel(h));
        assert_eq!(q.scheduled_total(), 6, "cancelled events still count");
        q.clear();
        assert_eq!(q.scheduled_total(), 6);
        q.schedule(SimTime::from_nanos(1), 1);
        assert_eq!(q.scheduled_total(), 7, "counter keeps going after clear");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn with_capacity_preallocates_and_shrinks() {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(256);
        assert!(q.capacity() >= 256, "with_capacity is a lower bound");
        assert_eq!(q.scheduled_total(), 0, "capacity does not affect counters");
        for i in 0..16u64 {
            q.schedule(SimTime::from_nanos(i), i);
        }
        while q.pop().is_some() {}
        q.shrink_to_fit();
        assert!(q.capacity() < 256, "shrink_to_fit releases the burst");
        // The queue still works after shrinking.
        q.schedule(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
    }

    #[test]
    fn shrink_to_fit_compacts_cancelled_tombstones() {
        // Regression: a burst of rearmed timers leaves the heap full of
        // cancelled tombstones; shrink_to_fit used to shrink around them, so
        // capacity (and the pending accounting built on it) stayed at the
        // stale burst high-water mark.
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..1024u64 {
            handles.push(q.schedule_cancellable(SimTime::from_nanos(1000 + i), i));
        }
        let keeper = q.schedule_cancellable(SimTime::from_nanos(999), 9999);
        for h in handles {
            assert!(q.cancel(h));
        }
        assert_eq!(q.len(), 1);
        q.shrink_to_fit();
        assert!(
            q.capacity() < 1024,
            "capacity must reflect live events, not tombstones (got {})",
            q.capacity()
        );
        assert_eq!(q.len(), 1, "compaction never touches live events");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(999)));
        // The surviving handle is still live and still cancellable.
        assert!(q.cancel(keeper));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancellation_skips_and_counts() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), 1u64);
        let h2 = q.schedule_cancellable(SimTime::from_nanos(2), 2u64);
        let h3 = q.schedule_cancellable(SimTime::from_nanos(3), 3u64);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double cancel is a no-op");
        assert_eq!(q.len(), 2, "len is live events only");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(3), 3)), "2 was skipped");
        assert!(!q.cancel(h3), "cancel after fire reports false");
        assert!(q.pop().is_none());
    }

    #[test]
    fn permuted_tiebreak_reorders_only_across_lanes_within_an_instant() {
        use crate::tiebreak::{pack_lane, TieBreak};
        // Two instants, 50 events each, spread over 10 destination lanes.
        // Permuted ordering must keep the instants in time order, emit each
        // instant's events as a permutation of the FIFO set, keep same-lane
        // events in FIFO order, and (for this seed) differ from global FIFO.
        let t1 = SimTime::from_micros(1);
        let t2 = SimTime::from_micros(2);
        let mut q = EventQueue::with_tie_break(TieBreak::Permuted(7));
        for i in 0..50u32 {
            q.schedule_in_lane(t1, pack_lane((i % 10) as u16, 0), i);
        }
        for i in 50..100u32 {
            q.schedule_in_lane(t2, pack_lane((i % 10) as u16, 0), i);
        }
        let popped: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
        let (first, second) = popped.split_at(50);
        assert!(first.iter().all(|&(t, _)| t == t1));
        assert!(second.iter().all(|&(t, _)| t == t2));
        let g1: Vec<u32> = first.iter().map(|&(_, e)| e).collect();
        assert_ne!(g1, (0..50).collect::<Vec<_>>(), "seed 7 should not be FIFO");
        let mut sorted = g1.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..50).collect::<Vec<_>>(),
            "a permutation, not a loss"
        );
        // Same-lane events (i % 10 equal) must still appear in schedule order.
        for lane in 0..10u32 {
            let in_lane: Vec<u32> = g1.iter().copied().filter(|e| e % 10 == lane).collect();
            let mut expect = in_lane.clone();
            expect.sort_unstable();
            assert_eq!(in_lane, expect, "lane {lane} lost its FIFO order");
        }
    }

    #[test]
    fn permuted_tiebreak_is_reproducible() {
        use crate::tiebreak::{pack_lane, TieBreak};
        let run = |seed: u64| {
            let mut q = EventQueue::with_tie_break(TieBreak::Permuted(seed));
            for i in 0..64u32 {
                q.schedule_in_lane(SimTime::from_micros(3), pack_lane(i as u16, 0), i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11), "same seed, same order");
        assert_ne!(run(11), run(12), "different seeds diverge on 64 lanes");
    }

    #[test]
    fn peek_time_sees_through_cancelled_head() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(SimTime::from_nanos(1), 1u64);
        q.schedule(SimTime::from_nanos(5), 5u64);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 5)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    proptest! {
        /// Pops are globally ordered by (time, insertion order), for any
        /// interleaving of schedules.
        #[test]
        fn pops_sorted_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt, "time order violated");
                    if t == lt {
                        prop_assert!(idx > lidx, "FIFO tie-break violated");
                    }
                }
                last = Some((t, idx));
            }
        }

        /// Interleaved pop/schedule never yields an event earlier than one
        /// already popped (given schedules are never in the past).
        #[test]
        fn interleaved_monotone(ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..200)) {
            let mut q = EventQueue::new();
            let mut clock = SimTime::ZERO;
            for (dt, pop) in ops {
                if pop {
                    if let Some((t, _)) = q.pop() {
                        prop_assert!(t >= clock);
                        clock = t;
                    }
                } else {
                    q.schedule(clock + SimDuration::from_nanos(dt), ());
                }
            }
        }
    }
}
