//! BBR (v1-style), adapted to a window-limited sender: a windowed-max
//! bottleneck-bandwidth filter and a windowed-min RTT filter feed a BDP
//! model; the Startup/Drain/ProbeBW/ProbeRTT state machine sets
//! `cwnd = gain × BDP`, so the ACK clock yields `rate ≈ gain × BtlBw`
//! without explicit pacing (the computed pacing rate is surfaced via
//! [`CongestionController::pacing_rate`]).
//!
//! Delivery rate is sampled per ACK from cumulative-ack interarrival, which
//! is the packet-level analogue of delivery-rate sampling; samples enter a
//! Kathleen-Nichols-style 3-slot windowed max filter.

use crate::{CcAlg, CcParams, CongestionController, Window};

/// High gain for Startup: 2/ln 2, fills the pipe in log2(BDP) rounds.
const HIGH_GAIN: f64 = 2.885;
/// ProbeBW gain cycle (applied to the BDP to set cwnd).
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// cwnd gain on top of BDP outside Startup, to keep the ACK clock busy.
const CWND_GAIN: f64 = 2.0;
/// Bandwidth filter window, in min-RTT units.
const BW_WINDOW_RTTS: u64 = 10;
/// min-RTT filter window, ns (10 s, as in BBR v1).
const MIN_RTT_WINDOW_NS: u64 = 10_000_000_000;
/// Time spent at the ProbeRTT floor, ns (200 ms).
const PROBE_RTT_NS: u64 = 200_000_000;
/// Startup is declared "full pipe" after this many rounds without 25% growth.
const FULL_BW_ROUNDS: u8 = 3;

/// The BBR state machine phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BbrPhase {
    /// Exponential search for the bottleneck bandwidth.
    Startup,
    /// Drain the queue built during Startup.
    Drain,
    /// Steady state: cycle gains around the estimated BDP.
    ProbeBw,
    /// Periodically shrink the window to re-measure the propagation RTT.
    ProbeRtt,
}

/// One slot of the windowed max filter.
#[derive(Debug, Clone, Copy)]
struct BwSample {
    val: f64,
    at_ns: u64,
}

/// BBR per-flow state.
#[derive(Debug, Clone, Copy)]
pub struct Bbr {
    w: Window,
    phase: BbrPhase,
    /// 3-slot windowed max of delivery-rate samples (best, 2nd, 3rd).
    bw: [BwSample; 3],
    /// Windowed min RTT, ns (u64::MAX until the first sample).
    min_rtt_ns: u64,
    /// When the current min-RTT estimate was last refreshed, ns.
    min_rtt_stamp_ns: u64,
    /// ProbeRTT ends at this time, ns.
    probe_rtt_done_ns: u64,
    /// Last ProbeBW gain-cycle advance, ns.
    cycle_stamp_ns: u64,
    /// Previous cumulative-ACK arrival, ns (0 until the first ACK).
    last_ack_ns: u64,
    /// Best bandwidth seen when the plateau detector last reset.
    full_bw: f64,
    /// cwnd saved on ProbeRTT entry, restored on exit.
    prior_cwnd: f64,
    /// ProbeBW gain-cycle index.
    cycle_idx: u8,
    /// Rounds without 25% bandwidth growth (Startup plateau detector).
    full_bw_rounds: u8,
}

impl Bbr {
    /// Fresh state in Startup.
    pub fn new(p: &CcParams) -> Bbr {
        Bbr {
            w: Window::new(p),
            phase: BbrPhase::Startup,
            bw: [BwSample { val: 0.0, at_ns: 0 }; 3],
            min_rtt_ns: u64::MAX,
            min_rtt_stamp_ns: 0,
            probe_rtt_done_ns: 0,
            cycle_stamp_ns: 0,
            last_ack_ns: 0,
            full_bw: 0.0,
            prior_cwnd: 0.0,
            cycle_idx: 0,
            full_bw_rounds: 0,
        }
    }

    /// Current phase (exposed for tests and reporting).
    pub fn phase(&self) -> BbrPhase {
        self.phase
    }

    /// Filtered bottleneck bandwidth, bytes/sec (0 until a sample exists).
    pub fn btlbw(&self) -> f64 {
        self.bw[0].val
    }

    /// Filtered minimum RTT, ns (`u64::MAX` until a sample exists).
    pub fn min_rtt(&self) -> u64 {
        self.min_rtt_ns
    }

    /// Bandwidth-delay product from the filters, bytes; 0 until both filters
    /// have samples.
    fn bdp(&self) -> f64 {
        if self.bw[0].val <= 0.0 || self.min_rtt_ns == u64::MAX {
            return 0.0;
        }
        self.bw[0].val * (self.min_rtt_ns as f64 / 1e9)
    }

    /// Insert a delivery-rate sample into the 3-slot windowed max filter and
    /// expire slots older than the bandwidth window.
    fn update_bw(&mut self, val: f64, now_ns: u64) {
        let horizon = if self.min_rtt_ns == u64::MAX {
            MIN_RTT_WINDOW_NS
        } else {
            BW_WINDOW_RTTS * self.min_rtt_ns.max(1_000_000)
        };
        let fresh = BwSample { val, at_ns: now_ns };
        if val >= self.bw[0].val || now_ns.saturating_sub(self.bw[0].at_ns) > horizon {
            self.bw = [fresh, self.bw[0], self.bw[1]];
        } else if val >= self.bw[1].val || now_ns.saturating_sub(self.bw[1].at_ns) > horizon {
            self.bw[1] = fresh;
            self.bw[2] = fresh;
        } else if val >= self.bw[2].val || now_ns.saturating_sub(self.bw[2].at_ns) > horizon {
            self.bw[2] = fresh;
        }
        // Keep only in-window slots at the front.
        if now_ns.saturating_sub(self.bw[0].at_ns) > horizon {
            self.bw[0] = self.bw[1];
            self.bw[1] = self.bw[2];
            self.bw[2] = fresh;
        }
    }

    /// Startup plateau detector: a "round" here is each ACK-driven check,
    /// counted only after the filter moved less than 25% since the last
    /// reset — full-pipe after [`FULL_BW_ROUNDS`] such checks.
    fn check_full_pipe(&mut self) {
        if self.bw[0].val > self.full_bw * 1.25 {
            self.full_bw = self.bw[0].val;
            self.full_bw_rounds = 0;
        } else if self.bw[0].val > 0.0 {
            self.full_bw_rounds = self.full_bw_rounds.saturating_add(1);
        }
    }

    /// Enter ProbeRTT if the min-RTT estimate has gone stale.
    fn maybe_probe_rtt(&mut self, p: &CcParams, now_ns: u64) {
        if self.phase == BbrPhase::ProbeRtt || self.min_rtt_stamp_ns == 0 {
            return;
        }
        if now_ns.saturating_sub(self.min_rtt_stamp_ns) > MIN_RTT_WINDOW_NS {
            self.prior_cwnd = self.w.cwnd;
            self.phase = BbrPhase::ProbeRtt;
            let floor_ns = if self.min_rtt_ns == u64::MAX {
                PROBE_RTT_NS
            } else {
                PROBE_RTT_NS.max(self.min_rtt_ns)
            };
            self.probe_rtt_done_ns = now_ns + floor_ns;
            self.w.cwnd = 4.0 * p.mss;
        }
    }
}

impl CongestionController for Bbr {
    fn alg(&self) -> CcAlg {
        CcAlg::Bbr
    }
    fn cwnd(&self) -> f64 {
        self.w.cwnd
    }
    fn ssthresh(&self) -> f64 {
        self.w.ssthresh
    }
    fn pacing_rate(&self) -> Option<f64> {
        if self.bw[0].val > 0.0 {
            let gain = match self.phase {
                BbrPhase::Startup => HIGH_GAIN,
                BbrPhase::Drain => 1.0 / HIGH_GAIN,
                BbrPhase::ProbeBw => CYCLE[self.cycle_idx as usize],
                BbrPhase::ProbeRtt => 1.0,
            };
            Some(gain * self.bw[0].val)
        } else {
            None
        }
    }

    fn on_ack(&mut self, p: &CcParams, newly: u64, now_ns: u64) {
        // Delivery-rate sample from cumulative-ACK interarrival.
        if self.last_ack_ns > 0 && now_ns > self.last_ack_ns {
            let dt = (now_ns - self.last_ack_ns) as f64 / 1e9;
            self.update_bw(newly as f64 / dt, now_ns);
        }
        self.last_ack_ns = now_ns;
        self.maybe_probe_rtt(p, now_ns);
        let bdp = self.bdp();
        match self.phase {
            BbrPhase::Startup => {
                // Exponential growth: double per round (cwnd += acked).
                self.w.cwnd += newly as f64;
                self.check_full_pipe();
                if self.full_bw_rounds >= FULL_BW_ROUNDS {
                    self.phase = BbrPhase::Drain;
                }
            }
            BbrPhase::Drain => {
                if bdp > 0.0 {
                    // Let the queue drain: hold the window at BDP.
                    self.w.cwnd = bdp.max(4.0 * p.mss);
                    self.phase = BbrPhase::ProbeBw;
                    self.cycle_idx = 0;
                    self.cycle_stamp_ns = now_ns;
                }
            }
            BbrPhase::ProbeBw => {
                let rtt = if self.min_rtt_ns == u64::MAX {
                    0
                } else {
                    self.min_rtt_ns
                };
                if rtt > 0 && now_ns.saturating_sub(self.cycle_stamp_ns) > rtt {
                    self.cycle_idx = (self.cycle_idx + 1) % 8;
                    self.cycle_stamp_ns = now_ns;
                }
                if bdp > 0.0 {
                    let gain = CYCLE[self.cycle_idx as usize];
                    // cwnd_gain keeps enough in flight to realize the probe
                    // rate through the ACK clock; the 0.75 phase drains by
                    // clamping below BDP.
                    let target = if gain < 1.0 {
                        gain * bdp
                    } else {
                        gain * CWND_GAIN * bdp / 2.0 + (CWND_GAIN / 2.0 - 0.5) * bdp
                    };
                    self.w.cwnd = target.max(4.0 * p.mss);
                }
            }
            BbrPhase::ProbeRtt => {
                self.w.cwnd = 4.0 * p.mss;
                if now_ns >= self.probe_rtt_done_ns {
                    self.min_rtt_stamp_ns = now_ns;
                    self.phase = if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.cycle_stamp_ns = now_ns;
                        BbrPhase::ProbeBw
                    } else {
                        BbrPhase::Startup
                    };
                    self.w.cwnd = self.prior_cwnd.max(4.0 * p.mss);
                }
            }
        }
    }

    fn on_rtt_sample(&mut self, _p: &CcParams, rtt_ns: u64, now_ns: u64, _ce: bool) {
        if rtt_ns <= self.min_rtt_ns
            || now_ns.saturating_sub(self.min_rtt_stamp_ns) > MIN_RTT_WINDOW_NS
        {
            self.min_rtt_ns = rtt_ns;
            self.min_rtt_stamp_ns = now_ns;
        }
    }

    fn on_ece(&mut self, _p: &CcParams) -> bool {
        // BBR v1 is rate-model driven and ignores ECN marks; declining tells
        // the sender not to open a CWR window or count a reduction.
        false
    }

    fn on_loss(&mut self, p: &CcParams, flight: u64) {
        // Packet conservation during recovery: window to what is actually in
        // flight; the model window is restored on exit.
        self.prior_cwnd = self.w.cwnd;
        self.w.ssthresh = (flight as f64 / 2.0).max(2.0 * p.mss);
        self.w.cwnd = (flight as f64).max(4.0 * p.mss);
    }
    fn on_partial_ack(&mut self, p: &CcParams, newly: u64) {
        self.w.partial_ack(p, newly);
    }
    fn on_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd += p.mss;
    }
    fn undo_recovery_dupack(&mut self, p: &CcParams) {
        self.w.cwnd -= p.mss;
    }
    fn on_recovery_exit(&mut self, p: &CcParams) {
        // Restore the model-driven window rather than collapsing to
        // ssthresh: loss does not change the BDP estimate.
        let bdp = self.bdp();
        let target = if bdp > 0.0 {
            CWND_GAIN * bdp
        } else {
            self.prior_cwnd
        };
        self.w.cwnd = target
            .max(self.prior_cwnd.min(self.w.cwnd))
            .max(4.0 * p.mss);
    }
    fn on_rto(&mut self, p: &CcParams, flight: u64) {
        self.w.ssthresh = (flight as f64 / 2.0).max(2.0 * p.mss);
        self.w.cwnd = p.mss;
        // Whole-window loss invalidates the full-pipe conclusion.
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.phase = BbrPhase::Startup;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_params;

    const MS: u64 = 1_000_000;

    /// Scripted delivery-rate trace: a 10 MB/s bottleneck with 1 ms RTT.
    /// ACKs of 1460 B arrive every 146 µs once the pipe is full.
    #[test]
    fn startup_drain_probebw_transitions() {
        let p = test_params();
        let mut b = Bbr::new(&p);
        assert_eq!(b.phase(), BbrPhase::Startup);
        let mut now = MS;
        b.on_rtt_sample(&p, MS, now, false);
        // Constant-rate ACK train: the bandwidth filter stops growing, the
        // plateau detector must fire and leave Startup, then Drain must hand
        // off to ProbeBW once the window sits at the BDP.
        for _ in 0..200 {
            now += 146_000;
            b.on_ack(&p, 1460, now);
            if b.phase() != BbrPhase::Startup {
                break;
            }
        }
        assert_eq!(b.phase(), BbrPhase::Drain, "plateau must end Startup");
        let btlbw = b.btlbw();
        assert!(
            (btlbw - 10e6).abs() < 1e6,
            "filtered bandwidth ≈ 10 MB/s, got {btlbw}"
        );
        now += 146_000;
        b.on_ack(&p, 1460, now);
        assert_eq!(b.phase(), BbrPhase::ProbeBw, "drain hands off to ProbeBW");
        // cwnd is modeled off the ~10 MB/s × 1 ms BDP (10.2 kB): within a
        // small factor, not the 1 MB receive window.
        let bdp = 10e6 * 1e-3;
        assert!(
            b.cwnd() <= 3.0 * bdp && b.cwnd() >= 0.5 * bdp,
            "cwnd {} vs bdp {bdp}",
            b.cwnd()
        );
    }

    #[test]
    fn probe_rtt_entered_when_min_rtt_goes_stale() {
        let p = test_params();
        let mut b = Bbr::new(&p);
        let mut now = MS;
        b.on_rtt_sample(&p, MS, now, false);
        for _ in 0..50 {
            now += 146_000;
            b.on_ack(&p, 1460, now);
        }
        let phase_before = b.phase();
        assert_ne!(phase_before, BbrPhase::ProbeRtt);
        // 10+ seconds with no fresher min-RTT sample.
        now += MIN_RTT_WINDOW_NS + MS;
        b.on_ack(&p, 1460, now);
        assert_eq!(b.phase(), BbrPhase::ProbeRtt);
        assert_eq!(b.cwnd(), 4.0 * p.mss, "window floors during ProbeRTT");
        // After the dwell the phase machine resumes and restores the window.
        now += PROBE_RTT_NS + MS;
        b.on_ack(&p, 1460, now);
        assert_ne!(b.phase(), BbrPhase::ProbeRtt);
        assert!(b.cwnd() >= 4.0 * p.mss);
    }

    #[test]
    fn probebw_gain_cycle_advances_once_per_rtt() {
        let p = test_params();
        let mut b = Bbr::new(&p);
        let mut now = MS;
        b.on_rtt_sample(&p, MS, now, false);
        for _ in 0..200 {
            now += 146_000;
            b.on_ack(&p, 1460, now);
            if b.phase() == BbrPhase::ProbeBw {
                break;
            }
        }
        assert_eq!(b.phase(), BbrPhase::ProbeBw);
        let idx0 = b.cycle_idx;
        // Two min-RTTs later the cycle index must have advanced.
        now += 2 * MS + 146_000;
        b.on_ack(&p, 1460, now);
        assert_ne!(b.cycle_idx, idx0, "gain cycle advances on the RTT clock");
    }

    #[test]
    fn rto_restarts_the_search() {
        let p = test_params();
        let mut b = Bbr::new(&p);
        let mut now = MS;
        b.on_rtt_sample(&p, MS, now, false);
        for _ in 0..200 {
            now += 146_000;
            b.on_ack(&p, 1460, now);
        }
        b.on_rto(&p, 20_000);
        assert_eq!(b.phase(), BbrPhase::Startup);
        assert_eq!(b.cwnd(), p.mss);
    }
}
